//! Points on the unit ring `[0,1)` with exact fixed-point arithmetic.

use std::fmt;

/// Clockwise distance between two ring points, in ring units.
///
/// A `RingDistance` of `u` represents the fraction `u / 2^64` of the full
/// ring. Distances are always in `[0, 1)`: the distance from a point to
/// itself is zero and the maximal distance is one ulp short of a full turn.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RingDistance(pub u64);

impl RingDistance {
    /// The zero distance.
    pub const ZERO: RingDistance = RingDistance(0);
    /// The largest representable distance (one ulp less than a full turn).
    pub const MAX: RingDistance = RingDistance(u64::MAX);

    /// The distance as a fraction of the full ring, in `[0, 1)`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 2.0f64.powi(64)
    }

    /// Construct from a fraction of the ring. Values outside `[0,1)` are
    /// reduced modulo 1.
    #[inline]
    pub fn from_f64(frac: f64) -> Self {
        let f = frac.rem_euclid(1.0);
        RingDistance((f * 2.0f64.powi(64)) as u64)
    }

    /// Half of this distance (rounding down).
    #[inline]
    pub fn halved(self) -> Self {
        RingDistance(self.0 >> 1)
    }

    /// Saturating doubling of this distance.
    #[inline]
    pub fn doubled_saturating(self) -> Self {
        RingDistance(self.0.saturating_mul(2))
    }
}

impl fmt::Debug for RingDistance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RingDistance({:.6})", self.as_f64())
    }
}

/// A virtual participant identifier: a point on the unit ring `[0,1)`.
///
/// Internally a 64-bit fixed-point value `v`, denoting the real number
/// `v / 2^64`. All arithmetic wraps around the ring, mirroring the paper's
/// convention that moving clockwise from a point near `1` continues at `0`.
///
/// `Ord` on `Id` is the natural order of the underlying fixed-point values,
/// i.e. position on the ring starting at `0`. For *clockwise* comparisons
/// relative to a base point use [`Id::distance_cw`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u64);

impl Id {
    /// The ring origin, `0.0`.
    pub const ZERO: Id = Id(0);

    /// Construct from a fraction in `[0,1)`; out-of-range inputs are reduced
    /// modulo 1.
    #[inline]
    pub fn from_f64(frac: f64) -> Self {
        let f = frac.rem_euclid(1.0);
        Id((f * 2.0f64.powi(64)) as u64)
    }

    /// The point as a fraction of the ring, in `[0,1)`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 2.0f64.powi(64)
    }

    /// The raw fixed-point representation.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Clockwise distance from `self` to `other`: the fraction of the ring
    /// swept when moving clockwise (increasing direction, wrapping) from
    /// `self` until reaching `other`. Zero iff the points coincide.
    #[inline]
    pub fn distance_cw(self, other: Id) -> RingDistance {
        RingDistance(other.0.wrapping_sub(self.0))
    }

    /// The minimum of the clockwise and counter-clockwise distances.
    #[inline]
    pub fn distance_min(self, other: Id) -> RingDistance {
        let cw = other.0.wrapping_sub(self.0);
        let ccw = self.0.wrapping_sub(other.0);
        RingDistance(cw.min(ccw))
    }

    /// Move clockwise by `d`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ring motion, not numeric +
    pub fn add(self, d: RingDistance) -> Id {
        Id(self.0.wrapping_add(d.0))
    }

    /// Move counter-clockwise by `d`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // ring motion, not numeric -
    pub fn sub(self, d: RingDistance) -> Id {
        Id(self.0.wrapping_sub(d.0))
    }

    /// Move clockwise by the fraction `1 / 2^i` of the ring — the Chord
    /// finger offset `Δ(i)` (§I-C footnote 11). `i` must be in `1..=64`.
    #[inline]
    pub fn add_pow2_fraction(self, i: u32) -> Id {
        debug_assert!((1..=64).contains(&i));
        let offset = if i == 64 { 1u64 } else { 1u64 << (64 - i) };
        Id(self.0.wrapping_add(offset))
    }

    /// The image of this point under the doubling map `x ↦ 2x mod 1`
    /// (de Bruijn / distance-halving constructions, \[19\], \[39\]).
    #[inline]
    pub fn double(self) -> Id {
        Id(self.0.wrapping_shl(1))
    }

    /// The left preimage of the doubling map: `x ↦ x/2` (the `ℓ` edge of
    /// the continuous-discrete construction \[39\]).
    #[inline]
    pub fn half_left(self) -> Id {
        Id(self.0 >> 1)
    }

    /// The right preimage of the doubling map: `x ↦ x/2 + 1/2` (the `r`
    /// edge of the continuous-discrete construction \[39\]).
    #[inline]
    pub fn half_right(self) -> Id {
        Id((self.0 >> 1) | (1u64 << 63))
    }

    /// Whether `self` lies in the clockwise half-open arc `(from, to]`.
    ///
    /// This is the Chord routing predicate: key `k` is owned by `suc(k)`
    /// and a node forwards while the key is outside `(current, successor]`.
    /// When `from == to` the arc is the full ring and everything matches.
    #[inline]
    pub fn in_arc_open_closed(self, from: Id, to: Id) -> bool {
        if from == to {
            return true;
        }
        // Shift coordinates so `from` is the origin; then the arc is (0, t].
        let x = self.0.wrapping_sub(from.0);
        let t = to.0.wrapping_sub(from.0);
        x != 0 && x <= t
    }

    /// Bit `j` of the clockwise position, with `j = 0` the most significant
    /// bit. Used to feed target bits into de Bruijn style routing.
    #[inline]
    pub fn bit(self, j: u32) -> bool {
        debug_assert!(j < 64);
        (self.0 >> (63 - j)) & 1 == 1
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:.6})", self.as_f64())
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_cw_wraps() {
        let a = Id::from_f64(0.9);
        let b = Id::from_f64(0.1);
        let d = a.distance_cw(b);
        assert!((d.as_f64() - 0.2).abs() < 1e-9, "wrap distance: {d:?}");
        let back = b.distance_cw(a);
        assert!((back.as_f64() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Id::from_f64(0.37);
        assert_eq!(a.distance_cw(a), RingDistance::ZERO);
        assert_eq!(a.distance_min(a), RingDistance::ZERO);
    }

    #[test]
    fn min_distance_is_symmetric_and_bounded() {
        let a = Id::from_f64(0.95);
        let b = Id::from_f64(0.05);
        assert_eq!(a.distance_min(b), b.distance_min(a));
        assert!(a.distance_min(b).as_f64() <= 0.5 + 1e-12);
        assert!((a.distance_min(b).as_f64() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Id::from_f64(0.75);
        let d = RingDistance::from_f64(0.5);
        assert_eq!(a.add(d).sub(d), a);
        assert!((a.add(d).as_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn pow2_fraction_offsets() {
        let a = Id::ZERO;
        assert!((a.add_pow2_fraction(1).as_f64() - 0.5).abs() < 1e-12);
        assert!((a.add_pow2_fraction(2).as_f64() - 0.25).abs() < 1e-12);
        assert!((a.add_pow2_fraction(3).as_f64() - 0.125).abs() < 1e-12);
        // The smallest finger is a single ulp.
        assert_eq!(a.add_pow2_fraction(64), Id(1));
    }

    #[test]
    fn doubling_and_halving() {
        let x = Id::from_f64(0.3);
        assert!((x.double().as_f64() - 0.6).abs() < 1e-9);
        let y = Id::from_f64(0.7);
        assert!((y.double().as_f64() - 0.4).abs() < 1e-9, "2*0.7 mod 1 = 0.4");
        // half_left and half_right are the two preimages of doubling.
        assert_eq!(x.half_left().double(), Id(x.0 & !1)); // up to the lost low bit
        assert!((x.half_left().as_f64() - 0.15).abs() < 1e-9);
        assert!((x.half_right().as_f64() - 0.65).abs() < 1e-9);
    }

    #[test]
    fn arc_membership() {
        let a = Id::from_f64(0.8);
        let b = Id::from_f64(0.2);
        // Arc (0.8, 0.2] wraps through zero.
        assert!(Id::from_f64(0.9).in_arc_open_closed(a, b));
        assert!(Id::from_f64(0.1).in_arc_open_closed(a, b));
        assert!(b.in_arc_open_closed(a, b), "closed at the far end");
        assert!(!a.in_arc_open_closed(a, b), "open at the near end");
        assert!(!Id::from_f64(0.5).in_arc_open_closed(a, b));
        // Degenerate arc = full ring.
        assert!(Id::from_f64(0.5).in_arc_open_closed(a, a));
    }

    #[test]
    fn bits_msb_first() {
        let x = Id(0b1010u64 << 60);
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert!(!x.bit(3));
    }
}
