//! # tg-idspace
//!
//! The unit-ring ID space `[0,1)` used throughout the tiny-groups
//! construction (Jaiyeola et al., *Tiny Groups Tackle Byzantine
//! Adversaries*, IPDPS 2018).
//!
//! Every participant is a virtual **ID**: a point on the unit ring, where
//! moving clockwise corresponds to moving from `0` towards `1` and wrapping
//! around. The paper notes that `O(log n)` bits of precision suffice; we use
//! a 64-bit fixed-point representation, so the ring has `2^64` addressable
//! points and arithmetic is exact (no floating-point drift in the
//! load-balancing or successor logic).
//!
//! The crate provides:
//!
//! * [`Id`] — a point on the ring with exact wrapping arithmetic,
//! * [`RingInterval`] — half-open clockwise arcs `[a, b)`,
//! * [`SortedRing`] — an immutable snapshot supporting `O(log n)`
//!   successor/predecessor queries (the `suc(x)` primitive of the paper),
//! * [`DynamicRing`] — a mutable ring for churn simulations,
//! * [`estimate`] — the folklore `ln n` / `ln ln n` estimators from
//!   successor gaps used by the paper to size groups (§III-A, and
//!   Chapter 4 of Young's thesis which the paper cites).

pub mod estimate;
pub mod id;
pub mod interval;
pub mod ring;

pub use estimate::{estimate_ln_ln_n, estimate_ln_n, GapEstimator};
pub use id::{Id, RingDistance};
pub use interval::RingInterval;
pub use ring::{DynamicRing, SortedRing};
