//! Estimating `ln n` and `ln ln n` from successor gaps.
//!
//! No ID knows the exact system size `n`. The paper (§III-A, citing
//! Chapter 4 of Young's thesis \[50\]) uses the standard trick: for IDs
//! placed u.a.r. on the unit ring, the clockwise distance `d(u, v)` from an
//! ID to its successor satisfies `α''/n² ≤ d ≤ α' ln n / n` w.h.p., so
//! `ln(1/d) = Θ(ln n)` and `ln ln (1/d) = ln ln n + O(1)`.
//!
//! Crucially this works even when the adversary withholds some or all of
//! its IDs (Lemma 5): omitting IDs only widens gaps by constant factors
//! w.h.p., which the double-logarithm absorbs entirely.

use crate::id::Id;
use crate::ring::SortedRing;

/// Estimate `ln n` from the gap between `w` and its successor.
///
/// Returns `ln(1 / d(w, suc(w)))`, which is `ln n + O(ln ln n)` w.h.p. for
/// u.a.r. IDs. The caller supplies the observing ID `w`; the estimate uses
/// only information `w` can obtain locally (its successor's value).
pub fn estimate_ln_n(ring: &SortedRing, w: Id) -> f64 {
    assert!(ring.len() >= 2, "need at least two IDs to observe a gap");
    let i = ring.index_of(w).expect("estimating ID must be on the ring");
    let gap = ring.segment_after(i).len().as_f64();
    // Gaps are nonzero for distinct IDs; 1 ulp is ~5.4e-20, ln(1/d) ≤ ~44.4.
    (1.0 / gap).ln()
}

/// Estimate `ln ln n` via `ln ln (1/d(w, suc(w)))` (§III-A).
pub fn estimate_ln_ln_n(ring: &SortedRing, w: Id) -> f64 {
    estimate_ln_n(ring, w).max(std::f64::consts::E).ln()
}

/// An aggregating estimator that medians several local observations.
///
/// A single gap estimates `ln n` only to within an `O(ln ln n)` additive
/// term; taking the median over a handful of observation points tightens
/// the constant considerably, which keeps the derived group sizes stable
/// across seeds. This mirrors what a deployed system would do (each group
/// member reports its local estimate; the group takes the median, which is
/// Byzantine-robust for a good-majority group).
#[derive(Clone, Debug, Default)]
pub struct GapEstimator {
    observations: Vec<f64>,
}

impl GapEstimator {
    /// An estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the local `ln n` estimate of `w`.
    pub fn observe(&mut self, ring: &SortedRing, w: Id) {
        self.observations.push(estimate_ln_n(ring, w));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.observations.len()
    }

    /// Median `ln n` estimate, or `None` if no observations were recorded.
    pub fn ln_n(&self) -> Option<f64> {
        if self.observations.is_empty() {
            return None;
        }
        let mut v = self.observations.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        Some(v[v.len() / 2])
    }

    /// Median `ln ln n` estimate.
    pub fn ln_ln_n(&self) -> Option<f64> {
        self.ln_n().map(|x| x.max(std::f64::consts::E).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ring(n: usize, seed: u64) -> SortedRing {
        let mut rng = StdRng::seed_from_u64(seed);
        SortedRing::new((0..n).map(|_| Id(rng.gen::<u64>())).collect())
    }

    #[test]
    fn single_gap_estimate_is_within_additive_lnln_band() {
        for &n in &[1 << 10, 1 << 14] {
            let ring = random_ring(n, 7);
            let truth = (n as f64).ln();
            let slack = 4.0 * truth.ln(); // α'-style constant band
            let mut within = 0usize;
            for i in (0..ring.len()).step_by(97) {
                let est = estimate_ln_n(&ring, ring.at(i));
                if (est - truth).abs() <= slack {
                    within += 1;
                }
            }
            let frac = within as f64 / (ring.len() as f64 / 97.0).ceil();
            assert!(frac > 0.95, "n={n}: only {frac:.3} of estimates within band");
        }
    }

    #[test]
    fn median_estimator_is_tight() {
        for &n in &[1usize << 12, 1 << 16] {
            let ring = random_ring(n, 11);
            let mut est = GapEstimator::new();
            for i in (0..ring.len()).step_by(ring.len() / 32) {
                est.observe(&ring, ring.at(i));
            }
            let got = est.ln_n().unwrap();
            let truth = (n as f64).ln();
            // Median of ln(1/gap) sits near ln n + Euler–Mascheroni-ish
            // offset; accept a generous constant band.
            assert!(
                (got - truth).abs() < 2.5,
                "n={n}: median ln n estimate {got:.2} vs truth {truth:.2}"
            );
            let gotll = est.ln_ln_n().unwrap();
            let truthll = truth.ln();
            assert!(
                (gotll - truthll).abs() < 0.4,
                "n={n}: ln ln n estimate {gotll:.2} vs truth {truthll:.2}"
            );
        }
    }

    #[test]
    fn robust_to_adversarial_omission() {
        // Lemma 5 flavour: removing a β-fraction of IDs must not move the
        // ln ln n estimate by more than a small constant.
        let n = 1 << 14;
        let mut rng = StdRng::seed_from_u64(3);
        let ids: Vec<Id> = (0..n).map(|_| Id(rng.gen::<u64>())).collect();
        let full = SortedRing::new(ids.clone());
        // Adversary removes every 4th ID (β = 0.25, far above the paper's β).
        let reduced = SortedRing::new(
            ids.iter().enumerate().filter(|(i, _)| i % 4 != 0).map(|(_, &id)| id).collect(),
        );
        let mut e_full = GapEstimator::new();
        let mut e_red = GapEstimator::new();
        for i in (0..reduced.len()).step_by(reduced.len() / 32) {
            let w = reduced.at(i);
            e_red.observe(&reduced, w);
            if full.contains(w) {
                e_full.observe(&full, w);
            }
        }
        let d = (e_full.ln_ln_n().unwrap() - e_red.ln_ln_n().unwrap()).abs();
        assert!(d < 0.25, "ln ln n moved by {d:.3} under 25% omission");
    }

    #[test]
    fn empty_estimator_returns_none() {
        let e = GapEstimator::new();
        assert!(e.ln_n().is_none());
        assert!(e.ln_ln_n().is_none());
    }
}
