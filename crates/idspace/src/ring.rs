//! Successor structures over a population of IDs.
//!
//! The paper's search primitive (property P1) resolves a key `x ∈ [0,1)` to
//! `suc(x)`: the first ID encountered moving clockwise from `x`. These
//! structures answer `suc` queries exactly; the overlay graphs then emulate
//! how a distributed system *routes* to that successor.

use crate::id::{Id, RingDistance};
use crate::interval::RingInterval;
use std::collections::BTreeSet;

/// An immutable, sorted snapshot of the ID population.
///
/// Supports `O(log n)` successor/predecessor queries by binary search and
/// `O(log n + k)` interval reporting. Duplicate IDs are collapsed: the ring
/// is a *set* of points (two participants never share an ID value; the
/// random-oracle minting of §IV makes collisions negligible, and the
/// builders in this workspace reject them outright).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SortedRing {
    ids: Vec<Id>,
}

impl SortedRing {
    /// Build from an arbitrary collection of IDs; sorts and deduplicates.
    pub fn new(mut ids: Vec<Id>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        SortedRing { ids }
    }

    /// Build from IDs already sorted and unique.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not strictly increasing.
    pub fn from_sorted_unique(ids: Vec<Id>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly increasing");
        SortedRing { ids }
    }

    /// Number of IDs on the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The IDs in increasing order.
    #[inline]
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Whether `id` is present.
    #[inline]
    pub fn contains(&self, id: Id) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// The index of `id` in sorted order, if present.
    #[inline]
    pub fn index_of(&self, id: Id) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The ID at sorted index `i`.
    #[inline]
    pub fn at(&self, i: usize) -> Id {
        self.ids[i]
    }

    /// `suc(x)`: the first ID at or clockwise of `x` (inclusive — an ID
    /// sitting exactly on `x` is its own successor, matching the paper's
    /// "first ID encountered by moving clockwise from x").
    ///
    /// # Panics
    /// Panics if the ring is empty.
    #[inline]
    pub fn successor(&self, x: Id) -> Id {
        self.ids[self.successor_index(x)]
    }

    /// Index of `suc(x)` in the sorted order.
    #[inline]
    pub fn successor_index(&self, x: Id) -> usize {
        assert!(!self.ids.is_empty(), "successor query on empty ring");
        match self.ids.binary_search(&x) {
            Ok(i) => i,
            Err(i) => {
                if i == self.ids.len() {
                    0 // wrap past the top of the ring
                } else {
                    i
                }
            }
        }
    }

    /// Index of the ID whose *covering segment* `[id, next)` contains `x` —
    /// i.e. the predecessor of `x`, inclusive at `x` itself. This is the
    /// node that "covers" a continuous point in the continuous-discrete
    /// constructions (\[19\], \[39\]).
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn covering_index(&self, x: Id) -> usize {
        assert!(!self.ids.is_empty(), "covering query on empty ring");
        match self.ids.binary_search(&x) {
            Ok(i) => i,
            Err(0) => self.ids.len() - 1, // wraps below the lowest ID
            Err(i) => i - 1,
        }
    }

    /// The ID covering `x`: `pred(x)` inclusive at `x`.
    #[inline]
    pub fn covering(&self, x: Id) -> Id {
        self.ids[self.covering_index(x)]
    }

    /// The first ID strictly counter-clockwise of `x` (exclusive).
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn predecessor(&self, x: Id) -> Id {
        assert!(!self.ids.is_empty(), "predecessor query on empty ring");
        let i = match self.ids.binary_search(&x) {
            Ok(i) | Err(i) => i,
        };
        if i == 0 {
            self.ids[self.ids.len() - 1]
        } else {
            self.ids[i - 1]
        }
    }

    /// The segment owned by the ID at index `i`: the arc `[id_i, id_{i+1})`
    /// — i.e. the set of keys whose successor is... the *next* ID. Note:
    /// under the successor rule, the keys owned by ID `u` are the arc
    /// `(pred(u), u]`; this method instead reports the gap that *starts* at
    /// `id_i`, which is what the continuous-discrete constructions use as a
    /// node's covering segment.
    pub fn segment_after(&self, i: usize) -> RingInterval {
        let a = self.ids[i];
        let b = self.ids[(i + 1) % self.ids.len()];
        if self.ids.len() == 1 {
            RingInterval::full(a)
        } else {
            RingInterval::between(a, b)
        }
    }

    /// The keys for which the ID at index `i` is responsible under the
    /// successor rule: the arc `(pred, id_i]`, reported as the half-open
    /// interval `[pred + ulp, id_i + ulp)`.
    pub fn responsibility_of(&self, i: usize) -> RingInterval {
        let me = self.ids[i];
        if self.ids.len() == 1 {
            return RingInterval::full(me);
        }
        let pred = self.ids[(i + self.ids.len() - 1) % self.ids.len()];
        RingInterval::between(pred.add(RingDistance(1)), me.add(RingDistance(1)))
    }

    /// All IDs whose value lies in the interval (in clockwise order from
    /// the interval start).
    pub fn ids_in(&self, interval: &RingInterval) -> Vec<Id> {
        if self.ids.is_empty() || interval.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let start_idx = self.successor_index(interval.start());
        for k in 0..self.ids.len() {
            let id = self.ids[(start_idx + k) % self.ids.len()];
            if interval.contains(id) {
                out.push(id);
            } else {
                break;
            }
        }
        out
    }

    /// The clockwise gap from each ID to the next, paired with the ID.
    /// The maximal gap bounds the load imbalance (property P2).
    pub fn gaps(&self) -> impl Iterator<Item = (Id, RingDistance)> + '_ {
        let n = self.ids.len();
        (0..n).map(move |i| {
            let a = self.ids[i];
            let b = self.ids[(i + 1) % n];
            (a, a.distance_cw(b))
        })
    }

    /// The maximum fraction of the key space owned by any single ID
    /// (property P2's `(1+δ'')/N` bound is checked against this).
    pub fn max_load_fraction(&self) -> f64 {
        self.gaps().map(|(_, g)| g.as_f64()).fold(0.0, f64::max)
    }
}

/// A mutable ring for churn simulations: joins and departures in
/// `O(log n)` via a `BTreeSet`.
#[derive(Clone, Debug, Default)]
pub struct DynamicRing {
    ids: BTreeSet<Id>,
}

impl DynamicRing {
    /// An empty ring.
    pub fn new() -> Self {
        DynamicRing { ids: BTreeSet::new() }
    }

    /// Number of IDs present.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Insert an ID; returns `false` if it was already present.
    pub fn insert(&mut self, id: Id) -> bool {
        self.ids.insert(id)
    }

    /// Remove an ID; returns `false` if it was absent.
    pub fn remove(&mut self, id: Id) -> bool {
        self.ids.remove(&id)
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: Id) -> bool {
        self.ids.contains(&id)
    }

    /// `suc(x)` with wrap-around (inclusive at `x`).
    ///
    /// # Panics
    /// Panics if the ring is empty.
    pub fn successor(&self, x: Id) -> Id {
        assert!(!self.ids.is_empty(), "successor query on empty ring");
        self.ids
            .range(x..)
            .next()
            .or_else(|| self.ids.iter().next())
            .copied()
            .expect("non-empty ring")
    }

    /// Freeze into an immutable [`SortedRing`] snapshot.
    pub fn snapshot(&self) -> SortedRing {
        SortedRing::from_sorted_unique(self.ids.iter().copied().collect())
    }
}

impl FromIterator<Id> for DynamicRing {
    fn from_iter<T: IntoIterator<Item = Id>>(iter: T) -> Self {
        DynamicRing { ids: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(points: &[f64]) -> SortedRing {
        SortedRing::new(points.iter().map(|&p| Id::from_f64(p)).collect())
    }

    #[test]
    fn successor_basics() {
        let r = ring(&[0.1, 0.4, 0.7]);
        assert_eq!(r.successor(Id::from_f64(0.2)), Id::from_f64(0.4));
        assert_eq!(r.successor(Id::from_f64(0.4)), Id::from_f64(0.4), "inclusive");
        assert_eq!(r.successor(Id::from_f64(0.8)), Id::from_f64(0.1), "wraps");
        assert_eq!(r.successor(Id::ZERO), Id::from_f64(0.1));
    }

    #[test]
    fn predecessor_basics() {
        let r = ring(&[0.1, 0.4, 0.7]);
        assert_eq!(r.predecessor(Id::from_f64(0.2)), Id::from_f64(0.1));
        assert_eq!(r.predecessor(Id::from_f64(0.4)), Id::from_f64(0.1), "exclusive");
        assert_eq!(r.predecessor(Id::from_f64(0.05)), Id::from_f64(0.7), "wraps");
    }

    #[test]
    fn covering_basics() {
        let r = ring(&[0.1, 0.4, 0.7]);
        assert_eq!(r.covering(Id::from_f64(0.2)), Id::from_f64(0.1));
        assert_eq!(r.covering(Id::from_f64(0.4)), Id::from_f64(0.4), "inclusive");
        assert_eq!(r.covering(Id::from_f64(0.05)), Id::from_f64(0.7), "wraps");
        assert_eq!(r.covering(Id::from_f64(0.99)), Id::from_f64(0.7));
        // Consistency: covering segment of the covering node contains x.
        for probe in [0.0, 0.1, 0.3, 0.4, 0.69, 0.7, 0.9] {
            let x = Id::from_f64(probe);
            let i = r.covering_index(x);
            assert!(r.segment_after(i).contains(x), "probe {probe}");
        }
    }

    #[test]
    fn dedup_on_build() {
        let r = ring(&[0.5, 0.5, 0.2]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ids_in_interval() {
        let r = ring(&[0.1, 0.4, 0.7, 0.9]);
        let got = r.ids_in(&RingInterval::between(Id::from_f64(0.35), Id::from_f64(0.75)));
        assert_eq!(got, vec![Id::from_f64(0.4), Id::from_f64(0.7)]);
        // Wrapping interval.
        let got = r.ids_in(&RingInterval::between(Id::from_f64(0.85), Id::from_f64(0.2)));
        assert_eq!(got, vec![Id::from_f64(0.9), Id::from_f64(0.1)]);
    }

    #[test]
    fn responsibility_partitions_ring() {
        let r = ring(&[0.1, 0.4, 0.7]);
        // Each key's successor owns it.
        for probe in [0.0, 0.1, 0.15, 0.39999, 0.4, 0.55, 0.7, 0.95] {
            let key = Id::from_f64(probe);
            let owner = r.successor(key);
            let idx = r.index_of(owner).unwrap();
            assert!(
                r.responsibility_of(idx).contains(key),
                "key {probe} should be owned by {owner:?}"
            );
        }
    }

    #[test]
    fn gaps_sum_to_full_ring() {
        let r = ring(&[0.05, 0.3, 0.62, 0.8]);
        let total: u128 = r.gaps().map(|(_, g)| g.0 as u128).sum();
        assert_eq!(total, 1u128 << 64);
    }

    #[test]
    fn max_load_fraction_matches_largest_gap() {
        let r = ring(&[0.0, 0.5, 0.6]);
        assert!((r.max_load_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_ring_matches_snapshot() {
        let mut d = DynamicRing::new();
        for p in [0.3, 0.6, 0.9] {
            d.insert(Id::from_f64(p));
        }
        assert_eq!(d.successor(Id::from_f64(0.7)), Id::from_f64(0.9));
        assert_eq!(d.successor(Id::from_f64(0.95)), Id::from_f64(0.3), "wraps");
        d.remove(Id::from_f64(0.9));
        assert_eq!(d.successor(Id::from_f64(0.7)), Id::from_f64(0.3));
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.successor(Id::from_f64(0.7)), snap.ids()[0]);
    }

    #[test]
    fn single_id_owns_everything() {
        let r = ring(&[0.42]);
        assert_eq!(r.successor(Id::from_f64(0.99)), Id::from_f64(0.42));
        assert!(r.responsibility_of(0).contains(Id::from_f64(0.1)));
        assert!(r.responsibility_of(0).contains(Id::from_f64(0.9)));
    }
}
