//! The Awerbuch–Scheideler **cuckoo rule** [8–10], as simulated in
//! *Commensal Cuckoo* \[47\].
//!
//! The ring is partitioned into `n/g` fixed **regions** (the groups).
//! The rule: when a node (re)joins, it is placed at a u.a.r. point `x`,
//! and every node currently in the **k-region** of `x` (the aligned
//! interval of size `k/n` containing `x`) is evicted and re-placed at
//! fresh u.a.r. points. Evictions spread incumbents around, which is
//! what lets the analysis bound adversarial concentration over `n^Θ(1)`
//! join/leave events — *provided the regions are large enough*.
//!
//! Sen & Freedman measured exactly how large: for `n = 8192`, groups of
//! 64 survive 10⁵ join/leave events only at tiny `β` (≈ 0.002), with
//! ≈ 0.07 reachable after their fixes — the data point the paper quotes
//! to argue that the logarithmic barrier is real and expensive. This
//! simulator reproduces the trade-off curve: time-to-first-bad-majority
//! versus group size and `β` under the join-leave attack.

use rand::rngs::StdRng;
use rand::Rng;

/// Parameters of one cuckoo-rule run.
#[derive(Clone, Copy, Debug)]
pub struct CuckooParams {
    /// Good nodes.
    pub n_good: usize,
    /// Bad nodes (`β = n_bad / (n_good + n_bad)`).
    pub n_bad: usize,
    /// Target group (region) size `g`; the ring has `(n_good+n_bad)/g`
    /// regions.
    pub group_size: usize,
    /// The `k` in "k-region": evictions clear an aligned interval
    /// expected to hold `k` nodes. Awerbuch–Scheideler need
    /// `k = Θ(log n)` for the analysis; \[47\] simulate small constants.
    pub k: usize,
}

/// What the adversary rejoins on its turns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CuckooStrategy {
    /// Rejoin a u.a.r. bad node (the baseline join-leave attack).
    RandomRejoin,
    /// Rejoin the bad node from the region where the adversary is
    /// weakest, consolidating its positions (adaptive attack).
    Consolidate,
}

/// State of a cuckoo-rule simulation.
pub struct CuckooSim {
    params: CuckooParams,
    /// Node positions in `[0,1)`; index < `n_good` ⇒ good node.
    positions: Vec<f64>,
    regions: usize,
    /// Ordered index `(position, node)` for O(log n + evicted) k-region
    /// eviction queries (10⁵-event runs at n = 8192 need this).
    by_position: std::collections::BTreeSet<(u64, usize)>,
    /// Per-region `(good, bad)` counts, maintained incrementally.
    counts: Vec<(u32, u32)>,
}

/// Position as ordered integer key (f64 in [0,1) maps monotonically).
fn pos_key(x: f64) -> u64 {
    (x * (1u64 << 53) as f64) as u64
}

/// Result of a run.
#[derive(Clone, Copy, Debug)]
pub struct CuckooOutcome {
    /// Join/leave events executed before a region lost its good
    /// majority (`None` ⇒ survived the whole budget).
    pub failed_at: Option<u64>,
    /// Events executed.
    pub events: u64,
    /// Worst bad fraction observed in any region at the end (or at
    /// failure).
    pub worst_bad_fraction: f64,
}

impl CuckooSim {
    /// Fresh simulation with all nodes placed u.a.r.
    pub fn new(params: CuckooParams, rng: &mut StdRng) -> Self {
        let n = params.n_good + params.n_bad;
        assert!(params.group_size >= 1 && params.group_size <= n);
        let regions = (n / params.group_size).max(1);
        let positions: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let by_position = positions.iter().enumerate().map(|(i, &x)| (pos_key(x), i)).collect();
        let mut sim =
            CuckooSim { params, positions, regions, by_position, counts: vec![(0, 0); regions] };
        for i in 0..n {
            sim.count_add(i, 1);
        }
        sim
    }

    fn region_of(&self, x: f64) -> usize {
        ((x * self.regions as f64) as usize).min(self.regions - 1)
    }

    fn count_add(&mut self, node: usize, delta: i32) {
        let r = self.region_of(self.positions[node]);
        let c = &mut self.counts[r];
        if node < self.params.n_good {
            c.0 = (c.0 as i32 + delta) as u32;
        } else {
            c.1 = (c.1 as i32 + delta) as u32;
        }
    }

    /// Move a node to a new position, keeping the indices consistent.
    fn relocate(&mut self, node: usize, x: f64) {
        self.count_add(node, -1);
        self.by_position.remove(&(pos_key(self.positions[node]), node));
        self.positions[node] = x;
        self.by_position.insert((pos_key(x), node));
        self.count_add(node, 1);
    }

    /// Per-region (good, bad) counts.
    pub fn region_counts(&self) -> Vec<(u32, u32)> {
        self.counts.clone()
    }

    /// Whether some region currently has a bad majority (bad ≥ good with
    /// at least one node — the failure condition of \[47\]).
    pub fn any_bad_majority(&self) -> Option<usize> {
        self.counts.iter().position(|&(g, b)| b > 0 && b >= g)
    }

    /// The cuckoo rule: place `node` at a fresh u.a.r. point and evict
    /// the k-region it lands in.
    fn cuckoo_join(&mut self, node: usize, rng: &mut StdRng) {
        let n = self.positions.len();
        let x: f64 = rng.gen();
        // The aligned k-region containing x: intervals of size k/n.
        let kregions = (n / self.params.k.max(1)).max(1);
        let kr = ((x * kregions as f64) as usize).min(kregions - 1);
        let lo = kr as f64 / kregions as f64;
        let hi = (kr + 1) as f64 / kregions as f64;
        // Evict current occupants of [lo, hi) to fresh random points.
        let evicted: Vec<usize> = self
            .by_position
            .range((pos_key(lo), 0)..(pos_key(hi), 0))
            .map(|&(_, i)| i)
            .filter(|&i| i != node)
            .collect();
        for i in evicted {
            let fresh = rng.gen();
            self.relocate(i, fresh);
        }
        self.relocate(node, x);
    }

    /// One adversarial join/leave event: a bad node departs and rejoins.
    fn adversary_event(&mut self, strategy: CuckooStrategy, rng: &mut StdRng) {
        let first_bad = self.params.n_good;
        let node = match strategy {
            CuckooStrategy::RandomRejoin => first_bad + rng.gen_range(0..self.params.n_bad),
            CuckooStrategy::Consolidate => {
                // The bad node in the region where the adversary holds the
                // smallest share — giving it a fresh lottery ticket while
                // its strong regions stay intact.
                let counts = self.region_counts();
                (first_bad..self.positions.len())
                    .min_by_key(|&i| {
                        let r = self.region_of(self.positions[i]);
                        let (g, b) = counts[r];
                        // Weakest = lowest bad share.
                        (1000.0 * b as f64 / (g + b).max(1) as f64) as u64
                    })
                    .expect("there is at least one bad node")
            }
        };
        self.cuckoo_join(node, rng);
    }

    /// Run up to `budget` adversarial join/leave events (with good nodes
    /// churning at the same rate, as in \[47\]), stopping at the first
    /// bad-majority region.
    pub fn run(
        &mut self,
        budget: u64,
        strategy: CuckooStrategy,
        rng: &mut StdRng,
    ) -> CuckooOutcome {
        if self.params.n_bad == 0 {
            return CuckooOutcome { failed_at: None, events: budget, worst_bad_fraction: 0.0 };
        }
        let mut events = 0u64;
        let mut failed_at = None;
        while events < budget {
            self.adversary_event(strategy, rng);
            // Matched good churn: one random good node also leaves and
            // rejoins (the system size stays n, as in the paper's model).
            if self.params.n_good > 0 {
                let g = rng.gen_range(0..self.params.n_good);
                self.cuckoo_join(g, rng);
            }
            events += 1;
            // Checking every event is O(n); check periodically plus the
            // tail for efficiency without missing sustained failures.
            if (events.is_multiple_of(64) || events == budget) && self.any_bad_majority().is_some()
            {
                failed_at = Some(events);
                break;
            }
        }
        let worst = self
            .region_counts()
            .iter()
            .map(|&(g, b)| b as f64 / (g + b).max(1) as f64)
            .fold(0.0, f64::max);
        CuckooOutcome { failed_at, events, worst_bad_fraction: worst }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_once(
        n_good: usize,
        n_bad: usize,
        group_size: usize,
        budget: u64,
        seed: u64,
    ) -> CuckooOutcome {
        let params = CuckooParams { n_good, n_bad, group_size, k: 4 };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = CuckooSim::new(params, &mut rng);
        sim.run(budget, CuckooStrategy::RandomRejoin, &mut rng)
    }

    #[test]
    fn no_adversary_never_fails() {
        let out = run_once(1024, 0, 16, 5_000, 1);
        assert!(out.failed_at.is_none());
        assert_eq!(out.worst_bad_fraction, 0.0);
    }

    #[test]
    fn tiny_groups_without_pow_fail_fast() {
        // The motivating contrast: cuckoo with log-log-sized groups (~8)
        // cannot withstand even modest β for long.
        let out = run_once(2000, 100, 8, 50_000, 2);
        assert!(out.failed_at.is_some(), "8-node regions at β≈0.05 must fall within 50k events");
    }

    #[test]
    fn larger_groups_survive_longer() {
        // The [47] trade-off: time-to-failure grows with group size.
        let mut small_failures = 0u64;
        let mut large_failures = 0u64;
        for seed in 0..3 {
            let small = run_once(2000, 40, 8, 20_000, 100 + seed);
            let large = run_once(2000, 40, 32, 20_000, 200 + seed);
            small_failures += small.failed_at.unwrap_or(20_000);
            large_failures += large.failed_at.unwrap_or(20_000);
        }
        assert!(
            large_failures > small_failures,
            "larger regions must survive longer: {large_failures} vs {small_failures}"
        );
    }

    #[test]
    fn consolidate_strategy_is_at_least_as_strong() {
        let params = CuckooParams { n_good: 1500, n_bad: 60, group_size: 12, k: 4 };
        let mut fail_random = 0u64;
        let mut fail_consolidate = 0u64;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let mut sim = CuckooSim::new(params, &mut rng);
            fail_random +=
                sim.run(15_000, CuckooStrategy::RandomRejoin, &mut rng).failed_at.unwrap_or(15_000);
            let mut rng = StdRng::seed_from_u64(300 + seed);
            let mut sim = CuckooSim::new(params, &mut rng);
            fail_consolidate +=
                sim.run(15_000, CuckooStrategy::Consolidate, &mut rng).failed_at.unwrap_or(15_000);
        }
        // The adaptive attack should not be weaker (allow small noise).
        assert!(
            fail_consolidate <= fail_random + 15_000 / 2,
            "consolidate {fail_consolidate} vs random {fail_random}"
        );
    }

    #[test]
    fn region_counts_sum_to_n() {
        let params = CuckooParams { n_good: 500, n_bad: 25, group_size: 16, k: 4 };
        let mut rng = StdRng::seed_from_u64(4);
        let sim = CuckooSim::new(params, &mut rng);
        let total: u32 = sim.region_counts().iter().map(|&(g, b)| g + b).sum();
        assert_eq!(total, 525);
    }

    #[test]
    fn eviction_moves_kregion_occupants() {
        let params = CuckooParams { n_good: 200, n_bad: 0, group_size: 10, k: 4 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = CuckooSim::new(params, &mut rng);
        let before = sim.positions.clone();
        sim.cuckoo_join(0, &mut rng);
        let moved = sim.positions.iter().zip(before.iter()).filter(|(a, b)| a != b).count();
        // The joiner moved, plus however many occupied its k-region.
        assert!(moved >= 1, "at least the joiner moves");
        assert!(moved < 40, "evictions are local, not global");
    }
}
