//! The no-groups strawman (§I-A).
//!
//! With "groups" of a single ID there are trivially `(1−β)n` reliable
//! processors — but routing between them is hopeless: a search traverses
//! `D = O(log n)` IDs and fails if *any* of them is Byzantine, so the
//! success rate is `≈ (1−β)^D`, which degrades with `n` (longer routes)
//! instead of improving. This module measures that, giving experiment E3
//! its third column and making the paper's "is this trivial?" argument
//! quantitative.

use rand::rngs::StdRng;
use rand::Rng;
use tg_core::Population;
use tg_idspace::Id;
use tg_overlay::InputGraph;

/// Measured single-ID routing outcome.
#[derive(Clone, Copy, Debug)]
pub struct SingleIdReport {
    /// Fraction of searches that traversed only good IDs.
    pub success_rate: f64,
    /// Mean traversed IDs per search.
    pub mean_route_len: f64,
    /// The analytic prediction `(1−β)^mean_route_len`.
    pub predicted: f64,
}

/// Sample `searches` random routes over `graph` (whose ring must be the
/// population's ring) and count those avoiding every bad ID.
pub fn measure_single_id_routing(
    pop: &Population,
    graph: &dyn InputGraph,
    searches: usize,
    rng: &mut StdRng,
) -> SingleIdReport {
    let ring = pop.ring();
    assert_eq!(ring.len(), graph.ring().len(), "graph must be built over the population ring");
    let beta = pop.bad_count() as f64 / pop.len() as f64;
    let mut ok = 0usize;
    let mut hops = 0usize;
    for _ in 0..searches {
        let from = rng.gen_range(0..ring.len());
        let key = Id(rng.gen());
        let route = graph.route(ring.at(from), key);
        hops += route.len();
        let clean =
            route.hops.iter().all(|&h| !pop.is_bad(ring.index_of(h).expect("route on ring")));
        if clean {
            ok += 1;
        }
    }
    let mean_route_len = hops as f64 / searches.max(1) as f64;
    SingleIdReport {
        success_rate: ok as f64 / searches.max(1) as f64,
        mean_route_len,
        predicted: (1.0 - beta).powf(mean_route_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tg_overlay::GraphKind;

    #[test]
    fn clean_population_always_succeeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::uniform(512, 0, &mut rng);
        let g = GraphKind::Chord.build(pop.ring().clone());
        let rep = measure_single_id_routing(&pop, g.as_ref(), 300, &mut rng);
        assert_eq!(rep.success_rate, 1.0);
    }

    #[test]
    fn failure_matches_prediction() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::uniform(2000, 100, &mut rng); // β ≈ 0.048
        let g = GraphKind::Chord.build(pop.ring().clone());
        let rep = measure_single_id_routing(&pop, g.as_ref(), 3000, &mut rng);
        assert!(
            (rep.success_rate - rep.predicted).abs() < 0.07,
            "measured {:.3} vs predicted {:.3}",
            rep.success_rate,
            rep.predicted
        );
        // And it is genuinely bad: ≥ ~25% of searches fail at β ≈ 5%.
        assert!(rep.success_rate < 0.8);
    }

    #[test]
    fn longer_routes_fail_more() {
        let mut rng = StdRng::seed_from_u64(3);
        let small = Population::uniform(500, 25, &mut rng);
        let large = Population::uniform(8000, 400, &mut rng);
        let gs = GraphKind::Chord.build(small.ring().clone());
        let gl = GraphKind::Chord.build(large.ring().clone());
        let rs = measure_single_id_routing(&small, gs.as_ref(), 1500, &mut rng);
        let rl = measure_single_id_routing(&large, gl.as_ref(), 1500, &mut rng);
        assert!(
            rl.success_rate < rs.success_rate,
            "bigger n ⇒ longer routes ⇒ worse: {:.3} vs {:.3}",
            rl.success_rate,
            rs.success_rate
        );
    }
}
