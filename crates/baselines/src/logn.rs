//! The `Θ(log n)`-group baseline.
//!
//! Prior constructions (\[7\]–\[10\], \[18\], \[21\], \[23\], \[39\], \[45\], \[51\] …)
//! all need `|G| = Θ(log n)` so that *every* group has a good majority
//! w.h.p. (`ε = 1/poly(n)` robustness). The same `tg-core` machinery
//! expresses this: only the size rule changes. The point of Corollary 1
//! is the cost gap — `Θ(log²n)` vs `Θ((log log n)²)` messages per
//! group operation and per routing hop — which experiment E3 measures
//! with exactly these two constructions side by side.

use tg_core::{build_initial_graph, GroupGraph, Params, Population};
use tg_crypto::Oracle;
use tg_overlay::GraphKind;

/// Build the classic baseline: groups of `c·ln n` members.
pub fn build_logn_baseline(
    pop: Population,
    kind: GraphKind,
    oracle: Oracle,
    c: f64,
) -> (GroupGraph, Params) {
    let params = Params::paper_defaults().with_classic_groups(c);
    (build_initial_graph(pop, kind, oracle, &params), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tg_crypto::OracleFamily;

    fn pop(n_good: usize, n_bad: usize, seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        Population::uniform(n_good, n_bad, &mut rng)
    }

    #[test]
    fn baseline_groups_are_logarithmic() {
        let p = pop(4000, 200, 1);
        let (gg, _) = build_logn_baseline(p, GraphKind::Chord, OracleFamily::new(1).h1, 1.5);
        let n = gg.len() as f64;
        let mean = gg.mean_group_size();
        assert!(
            mean > 0.9 * n.ln() && mean < 1.8 * n.ln(),
            "mean baseline size {mean:.1} vs 1.5·ln n ≈ {:.1}",
            1.5 * n.ln()
        );
    }

    #[test]
    fn baseline_is_much_larger_than_tiny() {
        let p = pop(4000, 200, 2);
        let fam = OracleFamily::new(2);
        let (baseline, _) = build_logn_baseline(p.clone(), GraphKind::Chord, fam.h1, 1.5);
        let tiny = build_initial_graph(p, GraphKind::Chord, fam.h1, &Params::paper_defaults());
        let ratio = baseline.mean_group_size() / tiny.mean_group_size();
        assert!(ratio > 1.3, "baseline/tiny size ratio {ratio:.2}");
    }

    #[test]
    fn baseline_has_no_bad_majorities_at_all() {
        // The whole point of Θ(log n): at β = 0.05 every group has a good
        // majority — ε = 1/poly(n), not 1/poly(log n).
        let p = pop(4000, 200, 3);
        let (gg, _) = build_logn_baseline(p, GraphKind::Chord, OracleFamily::new(3).h1, 2.0);
        assert_eq!(gg.frac_good_majority(), 1.0);
        assert_eq!(gg.frac_red(), 0.0);
    }
}
