//! # tg-baselines
//!
//! The prior-work systems the paper positions itself against:
//!
//! * [`logn`] — the classic `Θ(log n)`-group construction (Fiat–Saia–
//!   Young \[18\] and the long line of work in §I-B): same group-graph
//!   machinery as `tg-core`, but with logarithmic groups. Used by
//!   experiment E3 to reproduce Corollary 1's cost comparison.
//! * [`cuckoo`] — the Awerbuch–Scheideler **cuckoo rule** [8–10] for
//!   maintaining good majorities under join/leave churn, as simulated by
//!   Sen & Freedman's *Commensal Cuckoo* \[47\], whose finding the paper
//!   quotes: at `n = 8192` the rule needs `|G| = 64` to survive 10⁵
//!   joins/departures at small `β`. Experiment E8 reproduces the
//!   group-size/security trade-off.
//! * [`single_id`] — the no-groups strawman of §I-A ("groups each
//!   consisting of a single ID"): `(1−β)n` reliable processors but no
//!   secure routing — a search fails if *any* traversed ID is bad.

pub mod cuckoo;
pub mod logn;
pub mod single_id;

pub use cuckoo::{CuckooParams, CuckooSim, CuckooStrategy};
pub use logn::build_logn_baseline;
pub use single_id::measure_single_id_routing;
