//! [`CheckedDriver`] — an [`EpochDriver`] wrapper that evaluates every
//! applicable per-step invariant after each epoch.
//!
//! The wrapper is **observation-transparent**: checks are read-only over
//! the observation and graphs, and any randomness they need (sampled
//! route probes) comes from a `verify-*` labelled stream of the master
//! seed, so wrapping a driver changes no byte of its observation
//! sequence — the committed goldens replay identically checked or not.

use tg_core::scenario::{EpochDriver, EpochObservation, ObservationBatch, ScenarioError};
use tg_core::{GraphsView, ScenarioSpec};

use crate::invariant::{registry, CheckContext, Invariant, Scope, Violation};

/// An [`EpochDriver`] that runs the invariant [`registry`]
/// after every [`EpochDriver::step`].
pub struct CheckedDriver {
    inner: Box<dyn EpochDriver>,
    spec: ScenarioSpec,
    invariants: Vec<Box<dyn Invariant>>,
    violations: Vec<Violation>,
    strict: bool,
}

impl std::fmt::Debug for CheckedDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckedDriver")
            .field("spec", &self.spec.label())
            .field("epoch", &self.inner.epoch())
            .field("violations", &self.violations.len())
            .field("strict", &self.strict)
            .finish()
    }
}

impl CheckedDriver {
    /// Wrap an already-built driver. `spec` must be the spec the driver
    /// was built from — it gates which invariants apply and labels
    /// violation reports.
    pub fn wrap(inner: Box<dyn EpochDriver>, spec: ScenarioSpec) -> CheckedDriver {
        CheckedDriver { inner, spec, invariants: registry(), violations: Vec::new(), strict: false }
    }

    /// Build the spec through the total pipeline builder
    /// ([`tg_pow::scenario::build`]) and wrap it.
    pub fn build(spec: &ScenarioSpec) -> Result<CheckedDriver, ScenarioError> {
        Ok(CheckedDriver::wrap(tg_pow::scenario::build(spec)?, spec.clone()))
    }

    /// Panic on the first violation instead of collecting it — the mode
    /// CI and the golden replays run in, so a regression fails loudly
    /// with the full reproduction line.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Violations collected so far (empty in strict mode — strict
    /// panics instead).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The wrapped scenario's spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    fn check_now(&mut self) {
        let ctx = CheckContext {
            spec: &self.spec,
            obs: self.inner.observation(),
            graphs: self.inner.graphs(),
        };
        for inv in &self.invariants {
            if inv.scope() == Scope::Model || !inv.applies(&self.spec) {
                continue;
            }
            if let Err(detail) = inv.check(&ctx) {
                let v = Violation {
                    invariant: inv.id(),
                    label: self.spec.label(),
                    epoch: ctx.obs.epoch,
                    detail,
                };
                if self.strict {
                    panic!("invariant violation: {v}");
                }
                self.violations.push(v);
            }
        }
    }
}

impl EpochDriver for CheckedDriver {
    fn step(&mut self) -> &EpochObservation {
        self.inner.step();
        self.check_now();
        self.inner.observation()
    }

    fn observation(&self) -> &EpochObservation {
        self.inner.observation()
    }

    fn graphs(&self) -> GraphsView<'_> {
        self.inner.graphs()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn batch(&self) -> &ObservationBatch {
        self.inner.batch()
    }

    fn batch_mut(&mut self) -> &mut ObservationBatch {
        self.inner.batch_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_core::scenario::{Defense, KernelChoice, MintScheme, StrategySpec};

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(60, 42).searches(40)
    }

    #[test]
    fn checked_run_matches_unchecked_byte_for_byte() {
        let mut plain = tg_pow::scenario::build(&spec()).expect("build");
        let mut checked = CheckedDriver::build(&spec()).expect("build").strict();
        for _ in 0..5 {
            let a = format!("{:?}", plain.step());
            let b = format!("{:?}", checked.step());
            assert_eq!(a, b, "wrapping must not perturb the run");
        }
    }

    #[test]
    fn honest_scenarios_replay_clean_across_strategies_and_defenses() {
        let strategies = [
            StrategySpec::Honest,
            StrategySpec::Uniform,
            StrategySpec::GapFilling,
            StrategySpec::IntervalTargeting { victim: 0.25, width: 0.02 },
            StrategySpec::AdaptiveMajorityFlipper { margin: 1 },
        ];
        let defenses = [
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        ];
        for strategy in strategies {
            for defense in defenses {
                let spec = spec().strategy(strategy).defense(defense);
                let mut d = CheckedDriver::build(&spec).expect("build");
                d.run(4);
                assert_eq!(d.violations(), &[], "violations under `{}`", d.spec().label());
            }
        }
    }

    #[test]
    fn arena_kernel_replays_clean_too() {
        let spec = spec().kernel(KernelChoice::Arena).strategy(StrategySpec::GapFilling);
        let mut d = CheckedDriver::build(&spec).expect("build").strict();
        d.run(4);
    }

    #[test]
    fn violations_are_collected_with_full_context() {
        // Force a violation by lying to the checker about the budget:
        // build a gap-filling run but hand the wrapper a spec claiming
        // n_bad = 0, so INV-BUDGET must trip on every epoch.
        let real = spec().strategy(StrategySpec::Uniform);
        let mut lying = real.clone();
        lying.n_bad = 0;
        let inner = tg_pow::scenario::build(&real).expect("build");
        let mut d = CheckedDriver::wrap(inner, lying.clone());
        d.run(3);
        assert!(!d.violations().is_empty(), "the lie must be caught");
        let v = &d.violations()[0];
        assert_eq!(v.invariant, "INV-BUDGET");
        assert_eq!(v.label, lying.label());
        assert!(v.to_string().contains("reproduce"));
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn strict_mode_panics_on_violation() {
        let real = spec().strategy(StrategySpec::Uniform);
        let mut lying = real.clone();
        lying.n_bad = 0;
        let inner = tg_pow::scenario::build(&real).expect("build");
        CheckedDriver::wrap(inner, lying).strict().run(3);
    }
}
