//! # tg-verify
//!
//! The executable invariant layer: the paper's guarantees stated as
//! first-class, named predicates, plus the two engines that enforce
//! them.
//!
//! Nine PRs of simulation code reproduce *Tiny Groups Tackle Byzantine
//! Adversaries* (IPDPS 2018) statistically — sweeps, frontier maps,
//! goldens. What none of that states explicitly is the **spec**: which
//! properties every run must satisfy, where the paper claims them, and
//! what a violation looks like. This crate closes that gap:
//!
//! * [`invariant`] — the [`Invariant`] trait and the [`registry`] of
//!   named guarantees (`INV-GOODNESS`, `INV-ROUTE`, `INV-BUDGET`,
//!   `INV-OBS`, `INV-MONOTONE`), each carrying its paper citation and a
//!   machine-readable ID.
//! * [`checked`] — [`CheckedDriver`], an
//!   [`tg_core::scenario::EpochDriver`] wrapper that evaluates every
//!   applicable per-step invariant after each epoch without perturbing
//!   the run (checks draw from their own labelled RNG streams).
//!   Every experiment binary exposes it behind `--check-invariants`.
//! * [`model`] — the exhaustive small-configuration checker: enumerate
//!   **all** adversary placements of a tiny universe across the
//!   identity-pipeline defenses, assert the goodness and routing
//!   invariants below each defense's capture threshold, and return the
//!   exact [`model::Witness`] placement above it. The `e15_model`
//!   experiment reports the enumeration as CSV.
//!
//! A [`Violation`] report carries the full scenario label, the epoch,
//! and the invariant ID — one line is enough to rebuild the spec and
//! replay the failure.

pub mod checked;
pub mod invariant;
pub mod model;

pub use checked::CheckedDriver;
pub use invariant::{registry, CheckContext, Invariant, Scope, Violation};
pub use model::{
    assert_model, run_model, ModelCell, ModelConfig, ModelDefense, ModelReport, Witness,
};
