//! The paper's guarantees as first-class, named predicates.
//!
//! Each [`Invariant`] carries a machine-readable ID (stable across PRs —
//! violation reports, the e15 CSV, and the README table all key on it),
//! the paper section it restates, and a human description. The
//! [`registry`] is the single source of truth: the per-step checker
//! ([`crate::CheckedDriver`]) runs every [`Scope::Step`] invariant after
//! each epoch, and the exhaustive model checker ([`crate::model`])
//! enforces the [`Scope::Model`] ones over *all* adversary placements of
//! a tiny configuration.

use rand::rngs::StdRng;
use rand::Rng;
use tg_core::routing::{search_path, SearchOutcome};
use tg_core::scenario::{Defense, EpochObservation, ScenarioSpec, StrategySpec};
use tg_core::GroupGraphView;
use tg_core::{GraphsView, SideRef};
use tg_idspace::Id;
use tg_sim::{stream_rng, Metrics};

/// Where an invariant is enforced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Checked on every [`tg_core::scenario::EpochDriver::step`] by the
    /// [`crate::CheckedDriver`] wrapper (observation-level predicate).
    Step,
    /// Enforced by the exhaustive small-configuration model checker
    /// over every adversary placement ([`crate::model`]).
    Model,
    /// Both: sampled per step, exhaustive in the model checker.
    Both,
}

/// Everything a per-step check may look at: the scenario that produced
/// the run, the epoch's observation, and the post-swap operational
/// graphs.
pub struct CheckContext<'a> {
    /// The scenario specification the driver was built from.
    pub spec: &'a ScenarioSpec,
    /// The observation the step just produced.
    pub obs: &'a EpochObservation,
    /// The operational group graphs behind the observation.
    pub graphs: GraphsView<'a>,
}

impl std::fmt::Debug for CheckContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckContext")
            .field("label", &self.spec.label())
            .field("epoch", &self.obs.epoch)
            .finish()
    }
}

/// One named paper guarantee.
pub trait Invariant {
    /// Stable machine-readable ID (`INV-…`), the key of every violation
    /// report and e15 CSV row.
    fn id(&self) -> &'static str;
    /// The paper section / lemma the predicate restates.
    fn citation(&self) -> &'static str;
    /// One-line human description.
    fn description(&self) -> &'static str;
    /// Where the predicate is enforced.
    fn scope(&self) -> Scope;
    /// Whether the predicate is meaningful for `spec`. Gated invariants
    /// (e.g. budget conservation under stochastic PoW minting) opt out
    /// here instead of reporting vacuous violations.
    fn applies(&self, _spec: &ScenarioSpec) -> bool {
        true
    }
    /// Evaluate against one epoch. `Err` carries the violation detail.
    /// [`Scope::Model`]-only invariants return `Ok(())` (their
    /// enforcement lives in the enumerator).
    fn check(&self, _ctx: &CheckContext<'_>) -> Result<(), String> {
        Ok(())
    }
}

/// One recorded invariant violation, carrying everything needed to
/// reproduce it: parse the label back into a [`ScenarioSpec`], build the
/// driver, and step to the epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The violated invariant's [`Invariant::id`].
    pub invariant: &'static str,
    /// Full scenario label ([`ScenarioSpec::label`]) of the run.
    pub label: String,
    /// Epoch at which the predicate failed.
    pub epoch: u64,
    /// What exactly went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} violated at epoch {} of `{}`: {} (reproduce: build the labelled scenario and \
             step {} epochs under CheckedDriver)",
            self.invariant,
            self.epoch,
            self.label,
            self.detail,
            self.epoch + 1
        )
    }
}

/// **INV-GOODNESS** — group goodness below the β threshold (§I-C,
/// Lemma 6): with the adversary budget below the defense's threshold,
/// every group keeps a strictly good majority. Statistical at protocol
/// scale (the paper's bound is with-high-probability), so it is enforced
/// exhaustively by the model checker rather than per step.
#[derive(Debug)]
pub struct Goodness;

impl Invariant for Goodness {
    fn id(&self) -> &'static str {
        "INV-GOODNESS"
    }
    fn citation(&self) -> &'static str {
        "§I-C, Lemma 6"
    }
    fn description(&self) -> &'static str {
        "below the β threshold every group keeps a good majority (exhaustive over placements)"
    }
    fn scope(&self) -> Scope {
        Scope::Model
    }
}

/// **INV-ROUTE** — routing fails iff a red group sits on the path
/// (§II-B): a search outcome must agree with an independent scan of the
/// route's colors — success exactly when no red group is on the route,
/// failure exactly at the first red position. Sampled per step (the
/// checker draws its own RNG stream, consuming nothing of the kernel's),
/// exhaustive over every (start, key) pair in the model checker.
#[derive(Debug)]
pub struct RouteRedness {
    /// Searches sampled per epoch per side.
    pub samples: usize,
}

impl Invariant for RouteRedness {
    fn id(&self) -> &'static str {
        "INV-ROUTE"
    }
    fn citation(&self) -> &'static str {
        "§II-B (search-path semantics)"
    }
    fn description(&self) -> &'static str {
        "a search fails iff a red group sits on its route, at the first red position"
    }
    fn scope(&self) -> Scope {
        Scope::Both
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let mut rng: StdRng = stream_rng(ctx.spec.seed, "verify-route", ctx.obs.epoch);
        for s in 0..ctx.graphs.sides() {
            let side = ctx.graphs.side(s);
            if side.is_empty() {
                continue;
            }
            for _ in 0..self.samples {
                let from = rng.gen_range(0..side.len());
                let key = Id(rng.gen());
                check_route(&side, from, key).map_err(|e| format!("side {s}: {e}"))?;
            }
        }
        Ok(())
    }
}

/// The route check shared by the per-step sampler and the exhaustive
/// model checker: run [`search_path`] and independently derive the
/// first red position on the topology route; the two must agree.
pub fn check_route<G: GroupGraphView>(gg: &G, from_leader: usize, key: Id) -> Result<(), String> {
    let outcome = search_path(gg, from_leader, key, &mut Metrics::default());
    let from_id = gg.leaders().ring().at(from_leader);
    let route = gg.topology().route(from_id, key);
    let first_red = route.hops.iter().position(|&hop| {
        let gi = gg.leaders().ring().index_of(hop).expect("route hops are leader-ring IDs");
        gg.is_red(gi)
    });
    match (outcome, first_red) {
        (SearchOutcome::Success { hops, .. }, None) if hops == route.hops.len() => Ok(()),
        (SearchOutcome::Fail { failed_at, .. }, Some(red_at)) if failed_at == red_at => Ok(()),
        (got, _) => Err(format!(
            "search from leader {from_leader} for key {key:?}: outcome {got:?} but first red \
             on route is {first_red:?} of {} hops",
            route.hops.len()
        )),
    }
}

/// **INV-BUDGET** — adversary budget conservation (§I-C): at most
/// `n_bad` adversarial IDs enter the dynamic layer per epoch. Applies to
/// the placement pipeline ([`Defense::NoPow`]); under PoW the per-epoch
/// count is stochastic minting (its *expectation* is the budget — the
/// e6 experiment pins that bound), and the §IV-B hoarder deliberately
/// presents more than one window's worth.
#[derive(Debug)]
pub struct BudgetConservation;

impl Invariant for BudgetConservation {
    fn id(&self) -> &'static str {
        "INV-BUDGET"
    }
    fn citation(&self) -> &'static str {
        "§I-C (βn budget)"
    }
    fn description(&self) -> &'static str {
        "at most n_bad adversarial IDs enter the dynamic layer per epoch (placement pipeline)"
    }
    fn scope(&self) -> Scope {
        Scope::Both
    }
    fn applies(&self, spec: &ScenarioSpec) -> bool {
        spec.defense == Defense::NoPow
            && !matches!(spec.strategy, StrategySpec::PrecomputeHoarder { .. })
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        if ctx.obs.bad_ids > ctx.spec.n_bad {
            return Err(format!(
                "{} adversarial IDs entered the layer against a budget of {}",
                ctx.obs.bad_ids, ctx.spec.n_bad
            ));
        }
        Ok(())
    }
}

/// **INV-OBS** — observation/graph consistency (§II-A measurement):
/// the aggregate counts an observation reports must recount from the
/// operational graphs it claims to describe, and every reported
/// fraction must be a fraction. Guards every future kernel or runtime
/// refactor against drift between what is simulated and what is
/// reported.
#[derive(Debug)]
pub struct ObservationConsistency;

impl Invariant for ObservationConsistency {
    fn id(&self) -> &'static str {
        "INV-OBS"
    }
    fn citation(&self) -> &'static str {
        "§II-A (goodness census)"
    }
    fn description(&self) -> &'static str {
        "captured/total group counts recount from the graphs; all fractions lie in [0, 1]"
    }
    fn scope(&self) -> Scope {
        Scope::Step
    }
    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let (mut captured, mut total) = (0usize, 0usize);
        for g in ctx.graphs.iter() {
            total += g.len();
            captured += (0..g.len()).filter(|&i| !g.has_good_majority(i)).count();
            check_colors(&g)?;
        }
        if (captured, total) != (ctx.obs.captured_groups, ctx.obs.total_groups) {
            return Err(format!(
                "observation reports {}/{} captured/total groups, graphs recount {captured}/{total}",
                ctx.obs.captured_groups, ctx.obs.total_groups
            ));
        }
        let mut fracs: Vec<(&str, f64)> = vec![
            ("search_success_single", ctx.obs.search_success_single),
            ("search_success_dual", ctx.obs.search_success_dual),
            ("bad_share", ctx.obs.bad_share),
            ("captured_frac", ctx.obs.captured_frac()),
        ];
        for v in &ctx.obs.frac_red {
            fracs.push(("frac_red", *v));
        }
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} is not a fraction"));
            }
        }
        if ctx.obs.bad_ids == 0 && ctx.obs.bad_share != 0.0 {
            return Err(format!(
                "zero adversarial IDs cannot own a {} key-space share",
                ctx.obs.bad_share
            ));
        }
        Ok(())
    }
}

/// The coloring rule of §II-A, re-derived per group: red iff no strictly
/// good majority or confused neighbor links. Shared with the model
/// checker.
pub fn check_colors(g: &SideRef<'_>) -> Result<(), String> {
    for i in 0..g.len() {
        let expect_red = !g.has_good_majority(i) || g.is_confused(i);
        if g.is_red(i) != expect_red {
            return Err(format!(
                "group {i}: is_red={} but size={} bad={} confused={}",
                g.is_red(i),
                g.group_size(i),
                g.group_bad_count(i),
                g.is_confused(i)
            ));
        }
    }
    Ok(())
}

/// **INV-MONOTONE** — frontier monotonicity (Theorem 3 trend): the
/// number of capturing placements never decreases with the adversary
/// budget, and the `f∘g` two-hash defense never violates at a smaller
/// budget than the single-hash pipeline it strengthens. A cross-run
/// property, so it is enforced by the model sweep (and, statistically,
/// by the e11/e12 frontier maps), never per step.
#[derive(Debug)]
pub struct FrontierMonotonicity;

impl Invariant for FrontierMonotonicity {
    fn id(&self) -> &'static str {
        "INV-MONOTONE"
    }
    fn citation(&self) -> &'static str {
        "Theorem 3 (threshold trend in β, d₂)"
    }
    fn description(&self) -> &'static str {
        "capture is monotone in the adversary budget; the f∘g threshold is never below single-hash"
    }
    fn scope(&self) -> Scope {
        Scope::Model
    }
}

/// Every registered invariant, in report order.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(Goodness),
        Box::new(RouteRedness { samples: 16 }),
        Box::new(BudgetConservation),
        Box::new(ObservationConsistency),
        Box::new(FrontierMonotonicity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_cited() {
        let regs = registry();
        let mut seen = std::collections::HashSet::new();
        for inv in &regs {
            assert!(inv.id().starts_with("INV-"), "{} is not an INV- id", inv.id());
            assert!(seen.insert(inv.id()), "duplicate id {}", inv.id());
            assert!(!inv.citation().is_empty(), "{} lacks a citation", inv.id());
            assert!(!inv.description().is_empty(), "{} lacks a description", inv.id());
        }
        assert_eq!(regs.len(), 5);
    }

    #[test]
    fn budget_invariant_gates_on_the_placement_pipeline() {
        let inv = BudgetConservation;
        let nopow = ScenarioSpec::new(100, 1);
        assert!(inv.applies(&nopow));
        let pow = nopow
            .clone()
            .defense(Defense::Pow { scheme: tg_core::MintScheme::TwoHash, fresh_strings: true });
        assert!(!inv.applies(&pow), "stochastic minting is exempt");
        let hoarder = ScenarioSpec::new(100, 1)
            .strategy(StrategySpec::PrecomputeHoarder { fam_seed: 1, attempts: 10 });
        assert!(!inv.applies(&hoarder), "the §IV-B hoard is exempt");
    }

    #[test]
    fn violation_display_carries_reproduction_info() {
        let v = Violation {
            invariant: "INV-ROUTE",
            label: "tg1;n=10".to_string(),
            epoch: 3,
            detail: "boom".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("INV-ROUTE") && s.contains("tg1;n=10") && s.contains("epoch 3"));
    }
}
