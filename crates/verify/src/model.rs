//! Exhaustive small-configuration model checker.
//!
//! Samples can miss the one adversary placement that breaks a guarantee;
//! for a tiny universe we can afford not to sample. The checker
//! enumerates **every** placement of `b` adversarial identities over the
//! maximal-capture slot set of a tiny static system (one slot per good
//! ID, just below its clockwise successor, so the slot owns the whole
//! predecessor arc — the strongest position a point adversary has), for
//! every budget `b ≤ max_budget` and every identity-pipeline defense,
//! and re-derives the paper's guarantees per placement:
//!
//! * **INV-GOODNESS** (§I-C, Lemma 6) — below the defense's capture
//!   threshold, *no* placement produces a group without a good
//!   majority; at the threshold the checker returns the exact
//!   [`Witness`] placement that capture first becomes possible with.
//! * **INV-ROUTE** (§II-B) — for every placement, every (start, key)
//!   search agrees with an independent color scan of its route.
//! * **INV-BUDGET** (§I-C) — no placement realizes more identities than
//!   its budget.
//! * **INV-MONOTONE** (Theorem 3 trend) — capturing placements never
//!   decrease with `b`, and the `f∘g` two-hash pipeline never captures
//!   at a smaller budget than single-hash (Lemma 11: the composition
//!   discards the adversary's placement intent, so any minted point's
//!   capture is dominated by the slot set the adversary *wanted*).
//!
//! Everything is deterministic — oracles are seeded, no RNG stream is
//! drawn — so a reported witness reproduces bit-for-bit.

use tg_core::{build_initial_graph, GroupGraph, GroupGraphView, Params, Population};
use tg_crypto::OracleFamily;
use tg_idspace::Id;
use tg_overlay::GraphKind;
use tg_pow::puzzle::{attempt, attempt_single_hash, PuzzleParams};
use tg_sim::{combination_count, for_each_combination};

use crate::invariant::check_route;

/// Identity-pipeline defense the model realizes placements through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelDefense {
    /// No PoW: chosen slots enter the ring directly.
    NoPow,
    /// Single-hash minting (§IV-A's warned-against variant): `σ` is the
    /// ID, so the adversary still realizes its chosen slots exactly.
    SingleHash,
    /// The paper's `f∘g` composition (Lemma 11): `σ` is hashed twice,
    /// so the chosen slot is discarded and the minted point lands
    /// wherever `f(g(σ))` says.
    TwoHash,
}

impl ModelDefense {
    /// All defenses, in report order.
    pub const ALL: [ModelDefense; 3] =
        [ModelDefense::NoPow, ModelDefense::SingleHash, ModelDefense::TwoHash];

    /// Stable label for CSV rows and reports.
    pub fn label(self) -> &'static str {
        match self {
            ModelDefense::NoPow => "none",
            ModelDefense::SingleHash => "single-hash",
            ModelDefense::TwoHash => "f∘g",
        }
    }
}

/// The tiny universe the checker enumerates.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Good identities, evenly spaced on the ring.
    pub n_good: usize,
    /// Membership draws per group (group size is `draws + 1` before
    /// dedup), pinned via [`tg_core::GroupSizeRule::Fixed`] so the
    /// capture arithmetic is budget-only.
    pub draws: usize,
    /// Largest adversary budget to enumerate (`b = 0..=max_budget`).
    pub max_budget: usize,
    /// Oracle-family seed (the only randomness-like input; the model
    /// draws no RNG stream).
    pub seed: u64,
}

impl ModelConfig {
    /// The default tiny universe: 10 good identities, 4 draws (size-5
    /// groups), budgets up to 5 — 638 placements per defense, small
    /// enough that CI enumerates all of them with exhaustive routing,
    /// large enough that the capture threshold sits strictly above
    /// budget 1 and the `f∘g` scrambling advantage is visible at it.
    pub fn tiny() -> ModelConfig {
        ModelConfig { n_good: 10, draws: 4, max_budget: 5, seed: 42 }
    }

    /// Total placements enumerated per defense.
    pub fn placements(&self) -> u64 {
        (0..=self.max_budget).map(|b| combination_count(self.n_good, b)).sum()
    }
}

/// The exact placement a violation was first found with — enough to
/// rebuild the graph and re-derive the capture by hand.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Defense the placement was realized through.
    pub defense: ModelDefense,
    /// Adversary budget of the placement.
    pub budget: usize,
    /// Chosen slot indices (slot `j` sits just below good ID `j+1`).
    pub slots: Vec<usize>,
    /// Realized adversarial ring points.
    pub bad_ids: Vec<Id>,
    /// Index of the first captured group in the rebuilt graph.
    pub group: usize,
    /// Adversarial members of that group.
    pub bad_in_group: usize,
    /// Its total size.
    pub group_size: usize,
}

/// Aggregate over every placement of one (defense, budget) cell.
#[derive(Clone, Debug)]
pub struct ModelCell {
    /// Defense of the cell.
    pub defense: ModelDefense,
    /// Adversary budget of the cell.
    pub budget: usize,
    /// Placements enumerated (`n_good choose budget`).
    pub placements: u64,
    /// Placements producing at least one captured group
    /// (INV-GOODNESS failures — expected zero below the threshold).
    pub capturing: u64,
    /// Largest number of captured groups any single placement produced.
    pub max_captured: usize,
    /// Route checks evaluated (every (start, key) pair of every
    /// placement).
    pub route_checks: u64,
    /// INV-ROUTE disagreements (must be zero at any budget).
    pub route_violations: u64,
    /// INV-BUDGET overruns (must be zero at any budget).
    pub budget_violations: u64,
    /// First capturing placement, if any.
    pub witness: Option<Witness>,
}

/// The full enumeration result.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// The universe that was enumerated.
    pub config: ModelConfig,
    /// One cell per (defense, budget), defenses in [`ModelDefense::ALL`]
    /// order, budgets ascending within each defense.
    pub cells: Vec<ModelCell>,
}

impl ModelReport {
    /// The cells of one defense, budgets ascending.
    pub fn defense_cells(&self, d: ModelDefense) -> impl Iterator<Item = &ModelCell> {
        self.cells.iter().filter(move |c| c.defense == d)
    }

    /// The capture threshold of a defense: the smallest budget with at
    /// least one capturing placement. `None` if no enumerated budget
    /// captures.
    pub fn threshold(&self, d: ModelDefense) -> Option<usize> {
        self.defense_cells(d).find(|c| c.capturing > 0).map(|c| c.budget)
    }

    /// The witness placement at a defense's threshold.
    pub fn witness(&self, d: ModelDefense) -> Option<&Witness> {
        self.defense_cells(d).find(|c| c.capturing > 0).and_then(|c| c.witness.as_ref())
    }

    /// Total INV-ROUTE and INV-BUDGET violations across every cell
    /// (both must be zero for any budget — these invariants do not have
    /// a threshold).
    pub fn hard_violations(&self) -> u64 {
        self.cells.iter().map(|c| c.route_violations + c.budget_violations).sum()
    }
}

/// Realize slot choices as ring identities through a defense.
///
/// `NoPow` and `SingleHash` both land exactly on the chosen slots
/// (single-hash is the pipeline the paper rejects *because* it preserves
/// the adversary's choice); `TwoHash` pushes each slot's value through
/// the real `f(g(σ ⊕ r))` mint with a saturated difficulty, so the
/// chosen location is discarded and the point lands pseudo-randomly.
fn realize(defense: ModelDefense, slots: &[usize], slot_ids: &[Id], fam: &OracleFamily) -> Vec<Id> {
    // τ at the top of the ring: every attempt succeeds, so the model
    // isolates *placement* from minting luck.
    let params = PuzzleParams { tau: Id(u64::MAX), attempts_per_step: 1, t_epoch: 2 };
    slots
        .iter()
        .map(|&j| {
            let sigma = slot_ids[j].raw();
            match defense {
                ModelDefense::NoPow => slot_ids[j],
                ModelDefense::SingleHash => attempt_single_hash(fam, &params, sigma)
                    .expect("saturated τ admits every attempt"),
                ModelDefense::TwoHash => {
                    attempt(fam, &params, (sigma, sigma), 0)
                        .expect("saturated τ admits every attempt")
                        .id
                }
            }
        })
        .collect()
}

/// Build the static graph of one placement.
fn build_placement(cfg: &ModelConfig, good: &[Id], bad: &[Id], fam: &OracleFamily) -> GroupGraph {
    let pop = Population::new(good.to_vec(), bad.to_vec());
    let params = Params::paper_defaults().with_fixed_groups(cfg.draws);
    build_initial_graph(pop, GraphKind::Chord, fam.h1, &params)
}

/// Enumerate every placement of every budget through every defense.
pub fn run_model(cfg: &ModelConfig) -> ModelReport {
    let fam = OracleFamily::new(cfg.seed);
    let good: Vec<Id> =
        (0..cfg.n_good).map(|i| Id::from_f64(i as f64 / cfg.n_good as f64)).collect();
    // Slot j owns the whole arc below good ID (j+1): the latest point
    // the ring admits before the next good identity, so every
    // membership hash landing in that gap selects the slot.
    let slot_ids: Vec<Id> =
        (0..cfg.n_good).map(|j| Id(good[(j + 1) % cfg.n_good].raw().wrapping_sub(1))).collect();
    // Probe keys: every population point plus every gap midpoint, so
    // routes terminate both on identities and between them.
    let midpoints: Vec<Id> =
        (0..cfg.n_good).map(|i| Id::from_f64((i as f64 + 0.5) / cfg.n_good as f64)).collect();

    let mut cells = Vec::new();
    for defense in ModelDefense::ALL {
        for b in 0..=cfg.max_budget {
            let mut cell = ModelCell {
                defense,
                budget: b,
                placements: 0,
                capturing: 0,
                max_captured: 0,
                route_checks: 0,
                route_violations: 0,
                budget_violations: 0,
                witness: None,
            };
            for_each_combination(cfg.n_good, b, |slots| {
                cell.placements += 1;
                let mut bad = realize(defense, slots, &slot_ids, &fam);
                // Two-hash points are pseudo-random; drop the measure-zero
                // collisions so Population stays duplicate-free.
                bad.sort_unstable();
                bad.dedup();
                bad.retain(|id| !good.contains(id));
                if bad.len() > b {
                    cell.budget_violations += 1;
                }
                let gg = build_placement(cfg, &good, &bad, &fam);

                // INV-GOODNESS, exhaustively per group.
                let captured: Vec<usize> =
                    (0..gg.len()).filter(|&i| !gg.has_good_majority(i)).collect();
                if !captured.is_empty() {
                    cell.capturing += 1;
                    cell.max_captured = cell.max_captured.max(captured.len());
                    if cell.witness.is_none() {
                        let g0 = captured[0];
                        cell.witness = Some(Witness {
                            defense,
                            budget: b,
                            slots: slots.to_vec(),
                            bad_ids: bad.clone(),
                            group: g0,
                            bad_in_group: gg.group_bad_count(g0),
                            group_size: gg.group_size(g0),
                        });
                    }
                }

                // INV-ROUTE, exhaustively over (start, key).
                for from in 0..gg.len() {
                    for key in good.iter().chain(&bad).chain(&midpoints) {
                        cell.route_checks += 1;
                        if check_route(&gg, from, *key).is_err() {
                            cell.route_violations += 1;
                        }
                    }
                }
            });
            cells.push(cell);
        }
    }
    ModelReport { config: *cfg, cells }
}

/// The acceptance gate over a report — panics with the offending cell
/// (and witness, where one exists) on any failure:
///
/// 1. INV-ROUTE and INV-BUDGET hold for **every** placement at every
///    budget.
/// 2. INV-GOODNESS holds for every placement below each defense's
///    threshold, and the threshold cell carries a concrete witness.
/// 3. INV-MONOTONE: capturing placements never decrease with budget,
///    single-hash captures exactly like no defense (the adversary keeps
///    its chosen locations), and the `f∘g` threshold is never below
///    single-hash.
pub fn assert_model(report: &ModelReport) {
    assert_eq!(report.hard_violations(), 0, "INV-ROUTE/INV-BUDGET must hold for every placement");
    for d in ModelDefense::ALL {
        let cells: Vec<&ModelCell> = report.defense_cells(d).collect();
        if let Some(t) = report.threshold(d) {
            for c in &cells {
                if c.budget < t {
                    assert_eq!(
                        c.capturing,
                        0,
                        "INV-GOODNESS: {} captures below its threshold {t} at budget {}",
                        d.label(),
                        c.budget
                    );
                }
            }
            assert!(
                report.witness(d).is_some(),
                "threshold cell of {} must carry a witness placement",
                d.label()
            );
        }
        for w in cells.windows(2) {
            assert!(
                w[1].capturing >= w[0].capturing,
                "INV-MONOTONE: capturing placements of {} shrank from budget {} to {}",
                d.label(),
                w[0].budget,
                w[1].budget
            );
        }
    }
    for (none, single) in report
        .defense_cells(ModelDefense::NoPow)
        .zip(report.defense_cells(ModelDefense::SingleHash))
    {
        assert_eq!(
            (single.capturing, single.max_captured),
            (none.capturing, none.max_captured),
            "single-hash preserves the adversary's placement, so its capture profile must \
             equal no-defense at budget {}",
            none.budget
        );
    }
    let t_single = report.threshold(ModelDefense::SingleHash);
    let t_two = report.threshold(ModelDefense::TwoHash);
    if let (Some(s), Some(t)) = (t_single, t_two) {
        assert!(t >= s, "INV-MONOTONE: f∘g threshold {t} fell below the single-hash threshold {s}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_model_passes_the_acceptance_gate() {
        let report = run_model(&ModelConfig::tiny());
        assert_model(&report);
    }

    #[test]
    fn tiny_model_locates_a_concrete_witness() {
        let report = run_model(&ModelConfig::tiny());
        let t = report.threshold(ModelDefense::NoPow).expect("slot capture must kick in");
        let w = report.witness(ModelDefense::NoPow).expect("witness at threshold");
        assert_eq!(w.budget, t);
        assert_eq!(w.slots.len(), t);
        // The witness must actually reproduce: rebuild its graph and
        // recount the captured group.
        let cfg = report.config;
        let fam = OracleFamily::new(cfg.seed);
        let good: Vec<Id> =
            (0..cfg.n_good).map(|i| Id::from_f64(i as f64 / cfg.n_good as f64)).collect();
        let gg = build_placement(&cfg, &good, &w.bad_ids, &fam);
        assert!(!gg.has_good_majority(w.group), "witness group must recount as captured");
        assert_eq!(gg.group_bad_count(w.group), w.bad_in_group);
        assert_eq!(gg.group_size(w.group), w.group_size);
    }

    #[test]
    fn zero_budget_never_captures_and_routes_cleanly() {
        let report = run_model(&ModelConfig { n_good: 6, draws: 2, max_budget: 0, seed: 7 });
        for c in &report.cells {
            assert_eq!(c.capturing, 0, "no adversary, no capture");
            assert_eq!(c.route_violations, 0);
            assert!(c.route_checks > 0, "routing must actually be exercised");
        }
    }

    #[test]
    fn placement_counts_match_the_binomial() {
        let cfg = ModelConfig::tiny();
        let report = run_model(&cfg);
        for c in &report.cells {
            assert_eq!(c.placements, combination_count(cfg.n_good, c.budget));
        }
        assert_eq!(
            report.defense_cells(ModelDefense::NoPow).map(|c| c.placements).sum::<u64>(),
            cfg.placements()
        );
    }

    #[test]
    fn twohash_scrambles_placement_intent() {
        // At the no-defense threshold, f∘g must capture on strictly
        // fewer placements (typically zero at tiny scale) — Lemma 11's
        // point, stated over the whole enumeration.
        let report = run_model(&ModelConfig::tiny());
        let t = report.threshold(ModelDefense::NoPow).expect("threshold exists");
        let none = report.defense_cells(ModelDefense::NoPow).find(|c| c.budget == t).unwrap();
        let two = report.defense_cells(ModelDefense::TwoHash).find(|c| c.budget == t).unwrap();
        assert!(
            two.capturing < none.capturing,
            "f∘g captured {}/{} placements vs {}/{} undefended at budget {t}",
            two.capturing,
            two.placements,
            none.capturing,
            none.placements
        );
    }
}
