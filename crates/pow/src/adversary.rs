//! Adversary strategies pushed through the minting pipeline (§IV).
//!
//! `tg-core`'s strategy engine models an adversary that *chooses* its
//! ID values; this module is the other half of the argument — the same
//! [`AdversaryStrategy`] objects composed with the PoW pipeline, where
//! what the adversary gets depends on the scheme:
//!
//! * **`f∘g` (the paper)** — minted IDs are `f(g(σ ⊕ r))`: u.a.r. no
//!   matter how `σ` is cherry-picked (Lemma 11). The strategy's desired
//!   placement is discarded; only its solution *count* survives.
//! * **single-hash (the warned-against variant)** — the ID *is* `σ`,
//!   so the adversary grinds σ-candidates inside its desired placement
//!   and realizes the strategy exactly (rate-limited by the puzzle).
//!
//! [`PrecomputeHoarder`] attacks along the other §IV axis: it grinds
//! real [`Solution`]s every epoch and presents its entire hoard, which
//! [`crate::puzzle::verify`] filters against the *current* epoch string
//! — with fresh strings (§IV-B) the stale hoard dies and the adversary
//! is held to its per-epoch budget; with a frozen string the hoard
//! compounds without bound.

use crate::miner::sample_binomial;
use crate::puzzle::{attempt, verify_batch, PuzzleParams, Solution};
use rand::rngs::StdRng;
use rand::Rng;
use tg_core::dynamic::adversary::{dedup_against, AdversaryStrategy, AdversaryView, Uniform};
use tg_core::dynamic::{EpochIds, IdentityProvider};
use tg_crypto::OracleFamily;
use tg_idspace::Id;

/// Which minting scheme the identity pipeline runs (§IV-A). Defined in
/// `tg_core::scenario` (it is the scheme half of the declarative
/// [`Defense`](tg_core::scenario::Defense) axis) and re-exported here,
/// where the pipeline that interprets it lives.
pub use tg_core::scenario::MintScheme;

/// Genesis epoch string (shared with [`crate::system::FullSystem`]: a
/// standalone strategic run and a composed full-protocol run must agree
/// on what "the string that shipped with the software" is, or the
/// fresh-vs-frozen contrast would differ between the two pipelines).
pub(crate) const GENESIS_STRING: u64 = 0xD00D_F00D_0000_0001;

/// The epoch string in force for `epoch` under the fresh-string policy.
fn epoch_string(fresh: bool, epoch: u64) -> u64 {
    if fresh {
        GENESIS_STRING ^ (epoch.wrapping_add(1)).wrapping_mul(0x9e3779b97f4a7c15)
    } else {
        GENESIS_STRING
    }
}

/// An [`IdentityProvider`] that mints through the puzzle pipeline with a
/// pluggable adversary strategy — the §IV counterpart of
/// [`tg_core::dynamic::StrategicProvider`].
///
/// Good participants mint idealized u.a.r. IDs; the adversary's
/// solution count is binomial over its pooled compute (the statistical
/// shortcut validated in [`crate::miner`]), and its ID *values* follow
/// the scheme: realized placement under [`MintScheme::SingleHash`],
/// u.a.r. under [`MintScheme::TwoHash`]. Hoarding strategies may return
/// more IDs than the per-epoch count when the fresh-string defense is
/// off — exactly the overrun the defense exists to stop.
pub struct StrategicPowProvider {
    /// Puzzle difficulty and rates.
    pub puzzle: PuzzleParams,
    /// Good participants per epoch.
    pub n_good: usize,
    /// Adversary compute in units (`≈ βn`).
    pub adversary_units: f64,
    /// Which minting scheme is in force.
    pub scheme: MintScheme,
    /// Whether the epoch string refreshes every epoch (§IV-B). Turning
    /// this off re-enables pre-computation hoards.
    pub fresh_strings: bool,
    /// The adversary's placement policy.
    pub strategy: Box<dyn AdversaryStrategy>,
}

impl std::fmt::Debug for StrategicPowProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategicPowProvider")
            .field("scheme", &self.scheme.name())
            .field("fresh_strings", &self.fresh_strings)
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl StrategicPowProvider {
    /// A calibrated provider: one expected solution per unit per window.
    pub fn new(
        n_good: usize,
        adversary_units: f64,
        scheme: MintScheme,
        strategy: impl AdversaryStrategy + 'static,
    ) -> Self {
        StrategicPowProvider::boxed(n_good, adversary_units, scheme, Box::new(strategy))
    }

    /// Like [`StrategicPowProvider::new`], for a strategy chosen at
    /// runtime.
    pub fn boxed(
        n_good: usize,
        adversary_units: f64,
        scheme: MintScheme,
        strategy: Box<dyn AdversaryStrategy>,
    ) -> Self {
        StrategicPowProvider {
            puzzle: PuzzleParams::calibrated(16, 2048),
            n_good,
            adversary_units,
            scheme,
            fresh_strings: true,
            strategy,
        }
    }
}

impl IdentityProvider for StrategicPowProvider {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        // A composed system that runs a real string protocol (e.g.
        // `FullSystem`, via the `WithEpochString` provider wrapper)
        // supplies the agreed string through the view; standalone dynamic
        // runs get a synthesized per-epoch string under the same
        // fresh/frozen policy.
        let r = view.epoch_string.unwrap_or_else(|| epoch_string(self.fresh_strings, epoch));
        let good: Vec<Id> = (0..self.n_good).map(|_| Id(rng.gen())).collect();

        // The adversary's pooled compute yields a binomial solution count
        // per window (Lemma 11's budget) ...
        let attempts_per_unit = self.puzzle.attempts_per_step * self.puzzle.t_epoch / 2;
        let adv_attempts = (self.adversary_units * attempts_per_unit as f64).round() as u64;
        let budget = sample_binomial(adv_attempts, self.puzzle.success_prob(), rng) as usize;

        // ... and asks its strategy where it *wants* those identities.
        let pow_view =
            AdversaryView { epoch: view.epoch, graphs: view.graphs, epoch_string: Some(r) };
        let desired = self.strategy.place(&pow_view, &good, budget, rng);

        let bad = match self.scheme {
            // ID = σ: the adversary grinds candidates inside its desired
            // placement and lands exactly there.
            MintScheme::SingleHash => desired,
            // ID = f(g(σ ⊕ r)): placement is discarded, the count (which
            // a hoarder may have inflated when strings are stale) stays.
            MintScheme::TwoHash => {
                dedup_against((0..desired.len()).map(|_| Id(rng.gen())).collect(), &good, rng)
            }
        };
        EpochIds { good, bad }
    }
}

/// Hoard puzzle solutions across epochs and release the entire hoard
/// (§IV-B's pre-computation attack), wired through the real
/// [`attempt`]/[`verify_batch`] pipeline.
///
/// Every epoch the hoarder grinds `attempts_per_epoch` candidates
/// against the string it sees *then* and banks the [`Solution`]s. At
/// placement time it presents everything it holds; only solutions that
/// verify against the **current** string become identities. With fresh
/// strings that is just the current window's yield (`≈ βn`); with a
/// frozen string the whole hoard is valid and the adversary shows up
/// with `hoard_epochs × βn` IDs. Released IDs are `f(g(·))` outputs —
/// u.a.r. — so this strategy attacks the *count* axis, not placement.
///
/// On the no-PoW pipeline there are no puzzles to hoard; the strategy
/// degrades to uniform placement within budget.
pub struct PrecomputeHoarder {
    /// Oracle family the puzzle pipeline hashes with (must match the
    /// verifying system's).
    pub fam: OracleFamily,
    /// Puzzle parameters (an easy calibration keeps exact grinding
    /// cheap; counts are what matter).
    pub puzzle: PuzzleParams,
    /// Grinding budget per epoch, in puzzle attempts.
    pub attempts_per_epoch: u64,
    hoard: Vec<Solution>,
}

impl std::fmt::Debug for PrecomputeHoarder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecomputeHoarder")
            .field("attempts_per_epoch", &self.attempts_per_epoch)
            .field("hoard", &self.hoard.len())
            .finish()
    }
}

impl PrecomputeHoarder {
    /// A hoarder grinding `attempts_per_epoch` candidates per epoch.
    pub fn new(fam: OracleFamily, puzzle: PuzzleParams, attempts_per_epoch: u64) -> Self {
        PrecomputeHoarder { fam, puzzle, attempts_per_epoch, hoard: Vec::new() }
    }

    /// Solutions currently banked (valid or stale).
    pub fn hoard_len(&self) -> usize {
        self.hoard.len()
    }
}

impl AdversaryStrategy for PrecomputeHoarder {
    fn name(&self) -> &'static str {
        "precompute-hoarder"
    }

    fn place(
        &mut self,
        view: &AdversaryView<'_>,
        good: &[Id],
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Id> {
        let Some(r) = view.epoch_string else {
            // No PoW, nothing to hoard.
            return Uniform.place(view, good, budget, rng);
        };
        // Grind this epoch's window against the string in force now.
        for _ in 0..self.attempts_per_epoch {
            let sigma = (rng.gen(), rng.gen());
            if let Some(sol) = attempt(&self.fam, &self.puzzle, sigma, r) {
                self.hoard.push(sol);
            }
        }
        // Present the whole hoard; one batched verification pass culls
        // the stale part (the epoch's claims verify together, not one
        // call at a time).
        let verdicts = verify_batch(&self.fam, &self.puzzle, &self.hoard, r);
        let ids = self
            .hoard
            .iter()
            .zip(&verdicts)
            .filter(|&(_, &ok)| ok)
            .map(|(sol, _)| sol.id)
            .collect();
        dedup_against(ids, good, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tg_core::dynamic::adversary::GapFilling;

    fn easy_puzzle() -> PuzzleParams {
        PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 }
    }

    #[test]
    fn two_hash_discards_placement_single_hash_honors_it() {
        let run = |scheme: MintScheme| {
            let mut p = StrategicPowProvider::new(1000, 50.0, scheme, GapFilling);
            let mut rng = StdRng::seed_from_u64(1);
            p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng)
        };
        let fog = run(MintScheme::TwoHash);
        let single = run(MintScheme::SingleHash);
        let beta = 0.05;
        assert!(
            fog.bad_ring_share() < 2.0 * beta,
            "f∘g share {:.4} must stay near β",
            fog.bad_ring_share()
        );
        assert!(
            single.bad_ring_share() > 2.0 * beta,
            "single-hash share {:.4} must be amplified",
            single.bad_ring_share()
        );
        // Both are budget-limited by the puzzle (≈ βn = 50).
        assert!((25..=80).contains(&fog.bad.len()), "{} minted", fog.bad.len());
        assert!((25..=80).contains(&single.bad.len()), "{} minted", single.bad.len());
    }

    #[test]
    fn hoard_dies_with_fresh_strings_compounds_without() {
        let run = |fresh: bool| -> Vec<usize> {
            let fam = OracleFamily::new(7);
            let mut hoarder = PrecomputeHoarder::new(fam, easy_puzzle(), 2000);
            let mut rng = StdRng::seed_from_u64(2);
            let mut good_rng = StdRng::seed_from_u64(3);
            let good: Vec<Id> = (0..100).map(|_| Id(good_rng.gen())).collect();
            (0..5)
                .map(|e| {
                    let view = AdversaryView {
                        epoch: e,
                        graphs: tg_core::GraphsView::empty(),
                        epoch_string: Some(epoch_string(fresh, e)),
                    };
                    hoarder.place(&view, &good, 0, &mut rng).len()
                })
                .collect()
        };
        let fresh = run(true);
        let frozen = run(false);
        // ≈ 40 solutions per window. Fresh strings: flat. Frozen: linear.
        for &c in &fresh {
            assert!((15..90).contains(&c), "fresh-string release {c} should stay ≈ one window");
        }
        assert!(
            *frozen.last().unwrap() > 3 * frozen[0],
            "frozen-string hoard must compound: {frozen:?}"
        );
        assert!(
            *frozen.last().unwrap() > 2 * *fresh.last().unwrap(),
            "frozen {} vs fresh {}",
            frozen.last().unwrap(),
            fresh.last().unwrap()
        );
    }

    #[test]
    fn hoarder_without_pow_is_uniform_within_budget() {
        let fam = OracleFamily::new(9);
        let mut hoarder = PrecomputeHoarder::new(fam, easy_puzzle(), 2000);
        let mut rng = StdRng::seed_from_u64(4);
        let good: Vec<Id> = (0..200).map(|_| Id(rng.gen())).collect();
        let bad = hoarder.place(&AdversaryView::genesis(0), &good, 10, &mut rng);
        assert_eq!(bad.len(), 10, "no-PoW pipeline holds the hoarder to its budget");
        assert_eq!(hoarder.hoard_len(), 0, "nothing to grind without an epoch string");
    }

    #[test]
    fn provider_is_deterministic() {
        let run = || {
            let mut p = StrategicPowProvider::new(300, 15.0, MintScheme::TwoHash, GapFilling);
            let mut rng = StdRng::seed_from_u64(5);
            p.ids_for_epoch(2, &AdversaryView::genesis(2), &mut rng)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.good, b.good);
        assert_eq!(a.bad, b.bad);
    }
}
