//! # tg-pow
//!
//! §IV of the paper: enforcing the ID assumptions with computational
//! puzzles.
//!
//! Up to §III the construction *assumes* the adversary holds at most
//! `βn` IDs, u.a.r. in `[0,1)`, expiring each epoch. This crate removes
//! the assumption:
//!
//! * [`puzzle`] — ID minting: find `σ` with `g(σ ⊕ r) ≤ τ`; the ID is
//!   `f(g(σ ⊕ r))`. Includes difficulty calibration (one expected
//!   solution per compute unit per `T/2` steps) and verification, plus
//!   the **single-hash variant** (`ID = σ` when `g(σ) ≤ τ`) whose bias
//!   vulnerability motivates composing two hashes,
//! * [`miner`] — minting simulation at two fidelities: exact hashing for
//!   small demos, statistical (binomial counts + uniform values, valid by
//!   the random-oracle assumption) for scale; Lemma 11 measurements,
//! * [`attack`] — the targeted-interval attack against the single-hash
//!   scheme and the pre-computation attack that global random strings
//!   neutralize,
//! * [`strings`] — the Appendix VIII protocol: record-breaking bins with
//!   capped counters, three phases, solution sets `R_w`, adversarial
//!   delayed release; Lemma 12's agreement/size/message claims,
//! * [`provider`] — an [`tg_core::dynamic::IdentityProvider`] backed by
//!   the puzzle pipeline, closing the loop: the dynamic construction of
//!   §III runs on PoW-minted IDs,
//! * [`adversary`] — `tg-core`'s pluggable adversary strategies pushed
//!   through the minting pipeline: the `f∘g` vs single-hash placement
//!   contrast and the solution-hoarding strategy the fresh-string
//!   defense (§IV-B) exists to stop,
//! * [`system`] — the composed [`FullSystem`] (strings → minting →
//!   dynamics); `FullSystem::with_adversary` threads any strategy
//!   through the real epoch-string protocol (the E11 frontier's PoW
//!   rows), `with_frozen_strings` ablates §IV-B,
//! * [`scenario`] — the **total** builder for `tg_core::scenario`'s
//!   declarative [`tg_core::ScenarioSpec`]: every defense (no-PoW,
//!   single-hash, `f∘g`, frozen-string variants) and string mode (real
//!   protocol vs synthesized) becomes one `Box<dyn EpochDriver>`, the
//!   construction path all experiments and sweeps use.

pub mod adversary;
pub mod attack;
pub mod miner;
pub mod provider;
pub mod puzzle;
pub mod scenario;
pub mod strings;
pub mod system;

pub use adversary::{MintScheme, PrecomputeHoarder, StrategicPowProvider};
pub use miner::{MintingOutcome, MintingSim};
pub use provider::PowProvider;
pub use puzzle::{verify_batch, PuzzleParams, Solution};
pub use scenario::FullDriver;
pub use strings::{run_string_protocol, StringAdversary, StringOutcome, StringParams};
pub use system::{FullEpochReport, FullSystem};
