//! Minting simulation and the Lemma 11 measurements.
//!
//! Two fidelities:
//!
//! * **exact** — real SHA-256 attempts through [`crate::puzzle`]; used by
//!   small demos and to validate the statistical mode,
//! * **statistical** — solution *counts* drawn `Binomial(attempts, τ)`
//!   and ID *values* drawn uniformly. Both are exactly what the random
//!   oracle gives (each attempt is an independent Bernoulli; `f∘g` output
//!   is uniform), so the statistical mode is a faithful shortcut, not an
//!   approximation — it just skips grinding hashes.
//!
//! The good-ID caveat (documented in DESIGN.md §3 and measured in E6):
//! with one expected solution per unit per window, an individual good
//! participant *misses* the window with probability `≈ 1/e`. The paper
//! idealizes this ("(1±ε)T/2 steps required w.h.p."); `MintingSim`
//! exposes both the idealized mode (every good participant mints exactly
//! one ID) and the realistic mode (geometric minting, misses included).

use crate::puzzle::PuzzleParams;
use rand::rngs::StdRng;
use rand::Rng;
use tg_idspace::Id;

/// Counts and values from one minting window.
#[derive(Clone, Debug)]
pub struct MintingOutcome {
    /// IDs minted by good participants (one each in idealized mode;
    /// those who found a solution in realistic mode).
    pub good_ids: Vec<Id>,
    /// Number of good participants who failed to mint (realistic mode).
    pub good_misses: usize,
    /// IDs minted by the adversary's pooled compute.
    pub bad_ids: Vec<Id>,
}

/// Minting simulator for one system.
#[derive(Clone, Copy, Debug)]
pub struct MintingSim {
    /// Puzzle difficulty and rates.
    pub params: PuzzleParams,
    /// Number of good participants (one compute unit each).
    pub n_good: usize,
    /// Adversary compute, in units (the paper's `βn`).
    pub adversary_units: f64,
    /// Idealized good minting (the paper's concentration assumption) vs
    /// realistic per-participant Bernoulli processes.
    pub idealized_good: bool,
}

impl MintingSim {
    /// Run one half-epoch minting window (`T/2` steps).
    pub fn run_window(&self, rng: &mut StdRng) -> MintingOutcome {
        let steps = self.params.t_epoch / 2;
        let p = self.params.success_prob();
        let attempts_per_unit = self.params.attempts_per_step * steps;

        // Good participants.
        let mut good_ids = Vec::with_capacity(self.n_good);
        let mut good_misses = 0usize;
        for _ in 0..self.n_good {
            if self.idealized_good {
                good_ids.push(Id(rng.gen()));
            } else {
                // Pr[at least one success in `attempts_per_unit` tries].
                let miss_prob = (1.0 - p).powf(attempts_per_unit as f64);
                if rng.gen::<f64>() < miss_prob {
                    good_misses += 1;
                } else {
                    good_ids.push(Id(rng.gen()));
                }
            }
        }

        // Adversary: pooled attempts, binomial solution count, uniform
        // values (Lemma 11).
        let adv_attempts = (self.adversary_units * attempts_per_unit as f64).round() as u64;
        let count = sample_binomial(adv_attempts, p, rng);
        let bad_ids = (0..count).map(|_| Id(rng.gen())).collect();

        MintingOutcome { good_ids, good_misses, bad_ids }
    }
}

/// Binomial sampler: exact inversion for small means, normal
/// approximation beyond (means here are ≈ βn ≤ 10⁵, where the normal
/// approximation is excellent).
pub(crate) fn sample_binomial(n: u64, p: f64, rng: &mut StdRng) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean < 64.0 && n < 1 << 20 {
        // Direct simulation via geometric skips: O(mean) expected.
        let mut count = 0u64;
        let mut i = 0u64;
        let log1p = (1.0 - p).ln();
        loop {
            // Skip to the next success.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / log1p).floor() as u64;
            i = i.saturating_add(skip).saturating_add(1);
            if i > n {
                return count;
            }
            count += 1;
        }
    }
    // Normal approximation with continuity correction.
    let sd = (mean * (1.0 - p)).sqrt();
    let z = sample_standard_normal(rng);
    let v = (mean + sd * z).round();
    v.clamp(0.0, n as f64) as u64
}

/// Box–Muller standard normal.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tg_sim::stats::{chi_square_accepts_uniform, chi_square_uniform};

    fn sim(n_good: usize, beta: f64, idealized: bool) -> MintingSim {
        MintingSim {
            params: PuzzleParams::calibrated(16, 4096),
            n_good,
            adversary_units: beta * n_good as f64,
            idealized_good: idealized,
        }
    }

    /// Lemma 11 count bound: the adversary mints at most (1+ε)βn IDs per
    /// window, for small ε, w.h.p.
    #[test]
    fn adversary_count_concentrates_at_beta_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sim(10_000, 0.1, true); // βn = 1000
        for _ in 0..5 {
            let out = s.run_window(&mut rng);
            let count = out.bad_ids.len() as f64;
            assert!(
                (900.0..1100.0).contains(&count),
                "adversary minted {count}, expected ≈1000 ± 10%"
            );
        }
    }

    /// Lemma 11 uniformity: adversarial IDs are u.a.r. on the ring.
    #[test]
    fn adversary_ids_are_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = sim(20_000, 0.25, true);
        let out = s.run_window(&mut rng);
        let values: Vec<f64> = out.bad_ids.iter().map(|id| id.as_f64()).collect();
        assert!(values.len() > 3000);
        let (stat, dof) = chi_square_uniform(&values, 64);
        assert!(chi_square_accepts_uniform(stat, dof), "χ²={stat:.1}, dof={dof}");
    }

    /// The honest-miner caveat: realistic minting misses ≈ 1/e of good
    /// participants per window (the gap the paper idealizes away).
    #[test]
    fn realistic_good_miss_rate_is_one_over_e() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = sim(20_000, 0.0, false);
        let out = s.run_window(&mut rng);
        let miss_rate = out.good_misses as f64 / 20_000.0;
        let e_inv = (-1.0f64).exp();
        assert!((miss_rate - e_inv).abs() < 0.02, "miss rate {miss_rate:.3} vs 1/e ≈ {e_inv:.3}");
    }

    #[test]
    fn idealized_good_never_miss() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = sim(1000, 0.05, true).run_window(&mut rng);
        assert_eq!(out.good_misses, 0);
        assert_eq!(out.good_ids.len(), 1000);
    }

    #[test]
    fn binomial_sampler_matches_mean_and_var() {
        let mut rng = StdRng::seed_from_u64(5);
        // Small-mean regime (geometric skips).
        let samples: Vec<f64> =
            (0..4000).map(|_| sample_binomial(1000, 0.01, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean:.2} vs 10");
        // Large-mean regime (normal approximation).
        let samples: Vec<f64> =
            (0..4000).map(|_| sample_binomial(1 << 24, 0.001, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expect = (1u64 << 24) as f64 * 0.001;
        assert!((mean / expect - 1.0).abs() < 0.02, "mean {mean:.0} vs {expect:.0}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
    }
}
