//! The attacks §IV defends against, made concrete.
//!
//! * [`targeted_interval_attack`] — against the **single-hash** scheme
//!   the adversary confines `σ` to a chosen interval and every solution
//!   lands there, letting it capture all groups whose members are drawn
//!   from that interval. Against the paper's `f∘g` scheme the same
//!   strategy yields u.a.r. IDs (Lemma 11).
//! * [`precomputation_attack`] — without fresh epoch strings, the
//!   adversary grinds for many epochs, hoards solutions, and releases
//!   them at once — holding `hoard_epochs × βn` IDs instead of `βn`.
//!   With fresh strings (`r_i` changes each epoch) the hoard is stale and
//!   verification rejects it (§IV-B).

use crate::miner::sample_binomial;
use crate::puzzle::{attempt, attempt_single_hash, PuzzleParams, Solution};
use rand::rngs::StdRng;
use rand::Rng;
use tg_crypto::OracleFamily;
use tg_idspace::{Id, RingInterval};

/// Result of the targeted-interval comparison.
#[derive(Clone, Copy, Debug)]
pub struct TargetedAttackOutcome {
    /// Fraction of single-hash IDs inside the target interval.
    pub single_hash_in_target: f64,
    /// Fraction of two-hash IDs inside the target interval.
    pub two_hash_in_target: f64,
    /// Interval width (the uniform baseline fraction).
    pub target_width: f64,
    /// Solutions minted under each scheme.
    pub single_hash_count: usize,
    /// Two-hash solutions minted.
    pub two_hash_count: usize,
}

/// Run the chosen-σ strategy against both schemes with `attempts` tries.
///
/// The adversary wants its IDs inside `target`. Under the single-hash
/// scheme it draws `σ` from the target interval directly; under the
/// two-hash scheme the best it can do is draw anything (the output is
/// uniform regardless).
pub fn targeted_interval_attack(
    fam: &OracleFamily,
    params: &PuzzleParams,
    target: RingInterval,
    attempts: u64,
    rng: &mut StdRng,
) -> TargetedAttackOutcome {
    let width = target.len().as_f64();
    let mut single_ids: Vec<Id> = Vec::new();
    let mut two_ids: Vec<Id> = Vec::new();
    for _ in 0..attempts {
        // Single-hash: σ drawn inside the target interval.
        let sigma_in = target
            .start()
            .add(tg_idspace::RingDistance((rng.gen::<f64>() * target.len().0 as f64) as u64));
        if let Some(id) = attempt_single_hash(fam, params, sigma_in.raw()) {
            single_ids.push(id);
        }
        // Two-hash: σ choice is irrelevant; use the same biased draw to
        // make the comparison as favorable to the adversary as possible.
        if let Some(sol) = attempt(fam, params, (sigma_in.raw(), 0), 0) {
            two_ids.push(sol.id);
        }
    }
    let frac_in = |ids: &[Id]| {
        if ids.is_empty() {
            0.0
        } else {
            ids.iter().filter(|&&x| target.contains(x)).count() as f64 / ids.len() as f64
        }
    };
    TargetedAttackOutcome {
        single_hash_in_target: frac_in(&single_ids),
        two_hash_in_target: frac_in(&two_ids),
        target_width: width,
        single_hash_count: single_ids.len(),
        two_hash_count: two_ids.len(),
    }
}

/// Result of the pre-computation comparison.
#[derive(Clone, Copy, Debug)]
pub struct PrecomputationOutcome {
    /// IDs the adversary can present in the attack epoch when strings
    /// refresh each epoch (hoard is stale).
    pub accepted_with_fresh_strings: u64,
    /// IDs accepted when the string never changes (hoard fully valid).
    pub accepted_without_fresh_strings: u64,
    /// The per-epoch budget `≈ βn` the adversary is supposed to be
    /// limited to.
    pub per_epoch_budget: u64,
}

/// Hoard solutions for `hoard_epochs` epochs, then attack.
///
/// Counts are statistical (binomial over the grinding budget — valid by
/// the random-oracle assumption); acceptance logic mirrors
/// [`crate::puzzle::verify`]'s string check.
pub fn precomputation_attack(
    params: &PuzzleParams,
    adversary_units: f64,
    hoard_epochs: u64,
    rng: &mut StdRng,
) -> PrecomputationOutcome {
    let window_attempts =
        (adversary_units * (params.attempts_per_step * params.t_epoch / 2) as f64) as u64;
    let p = params.success_prob();

    // Each hoarding epoch the adversary grinds a full window against the
    // string it sees *then*.
    let mut hoard_per_epoch: Vec<u64> = Vec::with_capacity(hoard_epochs as usize);
    for _ in 0..hoard_epochs {
        hoard_per_epoch.push(sample_binomial(window_attempts, p, rng));
    }
    let current_epoch_mint = *hoard_per_epoch.last().unwrap_or(&0);
    let total_hoard: u64 = hoard_per_epoch.iter().sum();

    PrecomputationOutcome {
        // Fresh strings: only solutions bound to the *current* string
        // survive — i.e. the last window's output.
        accepted_with_fresh_strings: current_epoch_mint,
        // Stale string forever: the entire hoard is valid at once.
        accepted_without_fresh_strings: total_hoard,
        per_epoch_budget: (adversary_units).round() as u64,
    }
}

/// Exact (hashing) demonstration that hoarded solutions die when the
/// string refreshes: mint against `r0`, verify against `r1`.
pub fn hoard_goes_stale(
    fam: &OracleFamily,
    params: &PuzzleParams,
    attempts: u64,
    r0: u64,
    r1: u64,
) -> (Vec<Solution>, usize) {
    let mut hoard = Vec::new();
    for s in 0..attempts {
        if let Some(sol) = attempt(fam, params, (s, s ^ 0xF00D), r0) {
            hoard.push(sol);
        }
    }
    let still_valid =
        crate::puzzle::verify_batch(fam, params, &hoard, r1).iter().filter(|&&ok| ok).count();
    (hoard, still_valid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn easy_params() -> PuzzleParams {
        PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 }
    }

    #[test]
    fn single_hash_is_fully_biased_two_hash_is_not() {
        let fam = OracleFamily::new(1);
        let params = easy_params();
        let target = RingInterval::between(Id::from_f64(0.3), Id::from_f64(0.31));
        let mut rng = StdRng::seed_from_u64(2);
        let out = targeted_interval_attack(&fam, &params, target, 30_000, &mut rng);
        assert!(out.single_hash_count > 300, "sample too small");
        assert!(out.two_hash_count > 300, "sample too small");
        assert!(
            out.single_hash_in_target > 0.99,
            "single-hash: all IDs in target, got {:.3}",
            out.single_hash_in_target
        );
        assert!(
            out.two_hash_in_target < 0.05,
            "two-hash: ≈width fraction in target, got {:.3} (width {:.3})",
            out.two_hash_in_target,
            out.target_width
        );
    }

    #[test]
    fn precomputation_pays_only_without_fresh_strings() {
        let params = PuzzleParams::calibrated(16, 2048);
        let mut rng = StdRng::seed_from_u64(3);
        let out = precomputation_attack(&params, 500.0, 10, &mut rng);
        // Without fresh strings the adversary shows up with ~10× its
        // per-epoch budget; with them, ~1×.
        assert!(
            out.accepted_without_fresh_strings as f64
                > 8.0 * out.accepted_with_fresh_strings as f64,
            "hoard {} vs fresh {}",
            out.accepted_without_fresh_strings,
            out.accepted_with_fresh_strings
        );
        let fresh = out.accepted_with_fresh_strings as f64;
        let budget = out.per_epoch_budget as f64;
        assert!(
            (fresh - budget).abs() < 0.25 * budget,
            "fresh-string acceptance {fresh} should sit near the βn budget {budget}"
        );
    }

    #[test]
    fn hoarded_solutions_fail_verification_after_refresh() {
        let fam = OracleFamily::new(4);
        let params = easy_params();
        let (hoard, still_valid) = hoard_goes_stale(&fam, &params, 5000, 111, 222);
        assert!(hoard.len() > 50, "hoard too small: {}", hoard.len());
        assert_eq!(still_valid, 0, "every hoarded solution must expire");
    }
}
