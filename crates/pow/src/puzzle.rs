//! The ID-minting puzzle (§IV-A).
//!
//! To generate an ID for epoch `i+1`, a participant holding the
//! globally-known random string `r_i` draws candidates `σ` and checks
//! `g(σ ⊕ r_i) ≤ τ`; on success the ID is `f(g(σ ⊕ r_i))`.
//!
//! * `τ` calibrates difficulty: we set it so one compute unit expects one
//!   solution per `T/2` steps (each unit performs `R` attempts/step).
//! * Composing `f ∘ g` forces minted IDs to be u.a.r. even for an
//!   adversary that cherry-picks `σ` (Lemma 11); the single-hash variant
//!   (`ID = σ` accepted when `g(σ) ≤ τ`) lets the adversary concentrate
//!   IDs — see [`crate::attack`].
//! * Verification recomputes the two hashes. The paper uses a
//!   zero-knowledge proof \[25\] so the verifier cannot steal `σ`; we model
//!   that confidentiality structurally (verification never exposes `σ`
//!   to other simulated parties — see DESIGN.md §3).

use tg_crypto::OracleFamily;
use tg_idspace::Id;

/// Difficulty and rate parameters of the minting puzzle.
#[derive(Clone, Copy, Debug)]
pub struct PuzzleParams {
    /// Success threshold: an attempt succeeds iff `g(σ ⊕ r) ≤ τ`.
    pub tau: Id,
    /// Puzzle attempts one compute unit performs per step.
    pub attempts_per_step: u64,
    /// Epoch length `T` in steps.
    pub t_epoch: u64,
}

impl PuzzleParams {
    /// Calibrate `τ` so one compute unit expects one solution per
    /// half-epoch: `Pr[attempt succeeds] = 2 / (R·T)`.
    ///
    /// # Panics
    /// Panics if `attempts_per_step` or `t_epoch` is zero or `t_epoch`
    /// is odd.
    pub fn calibrated(attempts_per_step: u64, t_epoch: u64) -> Self {
        assert!(attempts_per_step > 0 && t_epoch > 0, "rates must be positive");
        assert!(t_epoch.is_multiple_of(2), "epoch length must be even");
        let p = 2.0 / (attempts_per_step as f64 * t_epoch as f64);
        PuzzleParams { tau: Id::from_f64(p.min(1.0 - f64::EPSILON)), attempts_per_step, t_epoch }
    }

    /// The per-attempt success probability implied by `τ`.
    pub fn success_prob(&self) -> f64 {
        self.tau.as_f64()
    }

    /// Expected solutions for `units` compute units over `steps` steps.
    pub fn expected_solutions(&self, units: f64, steps: u64) -> f64 {
        units * self.attempts_per_step as f64 * steps as f64 * self.success_prob()
    }
}

/// A solved puzzle: the pre-image and the ID it mints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Solution {
    /// The solver's secret `σ` (two words: the paper's `ℓ·ln n`-bit
    /// string, 128 bits here).
    pub sigma: (u64, u64),
    /// The epoch string `r` this solution is bound to.
    pub epoch_string: u64,
    /// The minted ID, `f(g(σ ⊕ r))`.
    pub id: Id,
}

/// Attempt one candidate `σ` against epoch string `r`. Returns the
/// solution if `g(σ ⊕ r) ≤ τ`.
pub fn attempt(
    fam: &OracleFamily,
    params: &PuzzleParams,
    sigma: (u64, u64),
    r: u64,
) -> Option<Solution> {
    let g_out = fam.g.hash_u64_pair(sigma.0 ^ r, sigma.1 ^ r);
    if g_out <= params.tau {
        Some(Solution { sigma, epoch_string: r, id: fam.f.hash_id(g_out) })
    } else {
        None
    }
}

/// Verify a claimed solution against the expected epoch string.
///
/// An ID minted against a stale string fails verification — this is the
/// expiry mechanism: "w's current ID will not be valid in the next epoch
/// since it is signed by the older string" (§IV-A).
pub fn verify(fam: &OracleFamily, params: &PuzzleParams, sol: &Solution, current_r: u64) -> bool {
    if sol.epoch_string != current_r {
        return false;
    }
    let g_out = fam.g.hash_u64_pair(sol.sigma.0 ^ current_r, sol.sigma.1 ^ current_r);
    g_out <= params.tau && fam.f.hash_id(g_out) == sol.id
}

/// Verify a whole epoch's claimed solutions in one pass, returning one
/// verdict per solution in input order.
///
/// The two recomputed hashes per claim are pure and independent, so the
/// batch fans out over deterministic chunks
/// ([`tg_sim::parallel_map_chunked`]) and folds verdicts back in claim
/// order — bit-identical to mapping [`verify`] sequentially, for any
/// thread count. The arena-scale pipeline verifies each epoch's minted
/// set through this entry point instead of one call per claim.
pub fn verify_batch(
    fam: &OracleFamily,
    params: &PuzzleParams,
    sols: &[Solution],
    current_r: u64,
) -> Vec<bool> {
    // Below this size the fan-out overhead dwarfs the hashing.
    const BATCH_CHUNK: usize = 512;
    if sols.len() < BATCH_CHUNK {
        return sols.iter().map(|sol| verify(fam, params, sol, current_r)).collect();
    }
    tg_sim::parallel_map_chunked(sols.to_vec(), BATCH_CHUNK, |sol| {
        verify(fam, params, &sol, current_r)
    })
}

/// The **single-hash variant** the paper warns against: `σ` (one word,
/// interpreted as a ring point) is itself the ID whenever `g(σ) ≤ τ`.
/// Because the solver chooses `σ`, it chooses the ID's location.
pub fn attempt_single_hash(fam: &OracleFamily, params: &PuzzleParams, sigma: u64) -> Option<Id> {
    let g_out = fam.g.hash_u64(sigma);
    if g_out <= params.tau {
        Some(Id(sigma))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_expectation() {
        let p = PuzzleParams::calibrated(4, 1000);
        // p = 2/(4·1000) = 5e-4; a unit over T/2 steps: 4·500·5e-4 = 1.
        assert!((p.success_prob() - 5e-4).abs() < 1e-7);
        assert!((p.expected_solutions(1.0, 500) - 1.0).abs() < 1e-6);
        // An adversary with βn = 50 units over T/2: 50 expected.
        assert!((p.expected_solutions(50.0, 500) - 50.0).abs() < 1e-4);
    }

    #[test]
    fn solutions_verify_and_expire() {
        let fam = OracleFamily::new(7);
        // Easy puzzle so the scan below finds solutions quickly.
        let params = PuzzleParams { tau: Id::from_f64(0.01), attempts_per_step: 1, t_epoch: 200 };
        let r = 0xABCD;
        let mut found = None;
        for s in 0..10_000u64 {
            if let Some(sol) = attempt(&fam, &params, (s, s.wrapping_mul(3)), r) {
                found = Some(sol);
                break;
            }
        }
        let sol = found.expect("a 1% puzzle solves within 10k attempts whp");
        assert!(verify(&fam, &params, &sol, r));
        assert!(!verify(&fam, &params, &sol, r + 1), "stale-string solutions expire");
        // Tampered ID fails.
        let mut forged = sol;
        forged.id = Id(sol.id.raw() ^ 1);
        assert!(!verify(&fam, &params, &forged, r));
    }

    #[test]
    fn success_rate_is_near_tau() {
        let fam = OracleFamily::new(8);
        let params = PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 };
        let trials = 20_000u64;
        let hits = (0..trials).filter(|&s| attempt(&fam, &params, (s, !s), 99).is_some()).count();
        let rate = hits as f64 / trials as f64;
        assert!((0.015..0.025).contains(&rate), "hit rate {rate:.4} vs τ=0.02");
    }

    #[test]
    fn batched_verification_matches_sequential() {
        let fam = OracleFamily::new(11);
        let params = PuzzleParams { tau: Id::from_f64(0.05), attempts_per_step: 1, t_epoch: 2 };
        let r = 0x5EED;
        // A mixed bag: genuine solutions, stale-string claims, forgeries.
        let mut sols = Vec::new();
        for s in 0..40_000u64 {
            if let Some(sol) = attempt(&fam, &params, (s, s ^ 0xFF), r) {
                sols.push(sol);
            }
        }
        assert!(sols.len() >= 1024, "need a real batch, got {}", sols.len());
        let n = sols.len();
        for i in 0..n / 3 {
            sols[3 * i].epoch_string ^= 1; // stale string
        }
        for i in 0..n / 5 {
            sols[5 * i + 1].id = Id(sols[5 * i + 1].id.raw() ^ 1); // forged ID
        }
        let sequential: Vec<bool> = sols.iter().map(|s| verify(&fam, &params, s, r)).collect();
        let batched = verify_batch(&fam, &params, &sols, r);
        assert_eq!(sequential, batched);
        assert!(batched.iter().any(|&b| b) && batched.iter().any(|&b| !b));
    }

    #[test]
    fn two_hash_ids_are_uniform_even_with_chosen_sigma() {
        // The adversary restricts σ to tiny values; minted IDs must still
        // spread over the whole ring.
        let fam = OracleFamily::new(9);
        let params = PuzzleParams { tau: Id::from_f64(0.05), attempts_per_step: 1, t_epoch: 2 };
        let mut ids = Vec::new();
        for s in 0..20_000u64 {
            if let Some(sol) = attempt(&fam, &params, (s, 0), 0) {
                ids.push(sol.id.as_f64());
            }
        }
        assert!(ids.len() > 500, "need a decent sample, got {}", ids.len());
        let in_low_half = ids.iter().filter(|&&x| x < 0.5).count();
        let frac = in_low_half as f64 / ids.len() as f64;
        assert!((0.4..0.6).contains(&frac), "two-hash IDs skewed: {frac:.3} in low half");
    }

    #[test]
    fn single_hash_ids_follow_sigma() {
        // The same chosen-σ strategy *does* bias the single-hash scheme:
        // every minted ID lies exactly where the adversary pointed σ.
        let fam = OracleFamily::new(10);
        let params = PuzzleParams { tau: Id::from_f64(0.05), attempts_per_step: 1, t_epoch: 2 };
        let mut ids = Vec::new();
        for s in 0..20_000u64 {
            // σ confined to the first ~1e-15 of the ring.
            if let Some(id) = attempt_single_hash(&fam, &params, s) {
                ids.push(id.as_f64());
            }
        }
        assert!(ids.len() > 500);
        assert!(
            ids.iter().all(|&x| x < 1e-10),
            "single-hash IDs land exactly in the adversary's chosen interval"
        );
    }
}
