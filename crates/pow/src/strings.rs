//! Global random strings (§IV-B, Appendix VIII).
//!
//! Each epoch the system must agree (loosely) on a fresh random string to
//! sign the next epoch's puzzles — otherwise the adversary pre-computes.
//! The protocol: every good ID grinds candidate strings during Phase 1
//! and scores them with `h(s ⊕ r_{i-1})`; Phases 2–3 flood the best
//! candidates with a **record-breaking rule over bins**
//! `B_j = [2^{-j}, 2^{-j+1})`, each bin's forwards capped at `c0·ln n`,
//! which bounds total traffic at `Õ(n·ln T)` messages (Lemma 12 iii).
//! At the end each ID holds a solution set `R_w` of the `d0·ln n`
//! smallest-output strings; verification of a newly minted ID checks its
//! signing string against the verifier's `R`.
//!
//! The adversary's lever is **timing**: it can withhold a very small
//! output until late in Phase 2 so that only some good IDs adopt it as
//! their minimum `s^{i*}`. Lemma 12 (i) says Phase 3's extra `d'·ln n`
//! steps still spread any string that was anyone's end-of-Phase-2
//! minimum to everyone's solution set — which is exactly what
//! [`run_string_protocol`] measures.
//!
//! The flood runs over the **blue subgraph** of an operational group
//! graph (red groups drop traffic — worst case), with each inter-group
//! forward costing an all-to-all `|G_u|·|G_v|` messages.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashSet, VecDeque};
use tg_core::GroupGraphView;
use tg_sim::Summary;

/// Protocol constants (Appendix VIII).
#[derive(Clone, Copy, Debug)]
pub struct StringParams {
    /// Epoch length `T` in steps.
    pub t_epoch: u64,
    /// Candidate-generation attempts per ID per step (`h` evaluations).
    pub attempts_per_step: u64,
    /// `d'` — Phases 2 and 3 each last `d'·ln n` steps.
    pub dprime: f64,
    /// Counter cap factor: each bin forwards at most `c0·ln n` records.
    pub c0: f64,
    /// Solution-set size factor: `|R_w| ≤ d0·ln n`.
    pub d0: f64,
    /// Bin count factor: `b·ln(nT)` bins.
    pub bins_factor: f64,
}

impl Default for StringParams {
    fn default() -> Self {
        StringParams {
            t_epoch: 4096,
            attempts_per_step: 16,
            dprime: 2.0,
            c0: 2.0,
            d0: 3.0,
            bins_factor: 2.0,
        }
    }
}

/// What the adversary does with its (genuinely computed) strings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StringAdversary {
    /// No adversarial strings.
    None,
    /// Compute `strings` strings with its `βn` budget and release them
    /// from red groups at `release_frac` of the Phase 2+3 timeline
    /// (0.5 = the last moment of Phase 2 — the hardest instant).
    ///
    /// Note the honest-compute reality (measured by E7): with a small
    /// `β`, the adversary's best outputs are usually *worse* than the
    /// good global minimum, so its strings are not record-breakers and
    /// barely propagate — the attack has teeth only in its lucky tail.
    DelayedRelease {
        /// Number of small-output strings released.
        strings: usize,
        /// Release time as a fraction of the flooding timeline.
        release_frac: f64,
        /// Adversary compute in units (for output-magnitude sampling).
        units: f64,
    },
    /// The worst case Lemma 12 must survive: the adversary got lucky and
    /// holds `strings` strings whose outputs beat the good global
    /// minimum. Released at `release_frac` like `DelayedRelease`. A
    /// release at the last Phase-2 step makes them some nodes' `s^{i*}`
    /// with minimal time left to spread.
    ForcedRecords {
        /// Number of record-beating strings released.
        strings: usize,
        /// Release time as a fraction of the flooding timeline.
        release_frac: f64,
    },
}

/// Measurements from one protocol run (the Lemma 12 quantities).
#[derive(Clone, Debug)]
pub struct StringOutcome {
    /// Lemma 12 (i): every good giant-component ID's end-of-Phase-2
    /// minimum appears in every good giant-component ID's solution set.
    pub agreement: bool,
    /// Number of `(w, u)` pairs violating (i).
    pub missing_pairs: u64,
    /// Good IDs in the giant blue component.
    pub giant_size: usize,
    /// Solution-set size distribution (Lemma 12 ii: `O(ln n)`).
    pub solution_set_sizes: Summary,
    /// Total string forwards (bounded by the bins/counters rule).
    pub forwards: u64,
    /// Total messages (forwards weighted by `|G_u|·|G_v|`).
    pub messages: u64,
    /// Flooding steps executed (`2·d'·ln n`).
    pub steps: u64,
    /// The key of the globally smallest string seen by any good
    /// giant-component ID — the natural `r_i` for the next epoch's
    /// puzzles (every good ID holds it in its solution set when
    /// `agreement` is true).
    pub global_min_key: Option<u64>,
}

/// A string in flight: `(output, key)`; the key identifies the string
/// (owner, nonce) — outputs are what the protocol compares.
type Flying = (f64, u64);

/// One bin: the `cap` smallest strings seen at this scale, plus the
/// forward counter.
#[derive(Clone)]
struct Bin {
    /// Smallest strings seen in this bin, sorted ascending, ≤ cap long.
    smallest: Vec<Flying>,
    /// Forwards spent on this bin (hard-capped at `c0·ln n`).
    forwards: u32,
}

struct NodeState {
    bins: Vec<Bin>,
    /// Accepted strings (output, key), kept sorted by output.
    stored: Vec<Flying>,
    /// Minimum output seen (running).
    min_seen: Option<Flying>,
    /// Snapshot of `min_seen` at the end of Phase 2.
    si_star: Option<Flying>,
    inbox: VecDeque<Flying>,
    outbox: Vec<Flying>,
}

impl NodeState {
    fn new(num_bins: usize) -> Self {
        NodeState {
            bins: vec![Bin { smallest: Vec::new(), forwards: 0 }; num_bins],
            stored: Vec::new(),
            min_seen: None,
            si_star: None,
            inbox: VecDeque::new(),
            outbox: Vec::new(),
        }
    }

    /// The bins/counters rule, in the reading Lemma 12's proof needs
    /// ("we set c0 ≥ d'' to make sure that no smallest values are
    /// omitted"): a bin keeps its `cap` **smallest** strings — membership
    /// is order-independent, so two record-scale strings sharing a bin
    /// both survive no matter which floods first — and forwards are
    /// hard-capped at `cap` per bin, which is what bounds total traffic
    /// at `Õ(n ln T)`.
    fn offer(&mut self, s: Flying, cap: u32, num_bins: usize) -> bool {
        if self.min_seen.is_none_or(|m| s < m) {
            self.min_seen = Some(s);
        }
        let j = bin_index(s.0, num_bins);
        let bin = &mut self.bins[j];
        let pos = match bin
            .smallest
            .binary_search_by(|probe| probe.partial_cmp(&s).expect("finite outputs"))
        {
            Ok(_) => return false, // duplicate receipt
            Err(pos) => pos,
        };
        if pos >= cap as usize {
            return false; // not among the bin's cap smallest
        }
        bin.smallest.insert(pos, s);
        bin.smallest.truncate(cap as usize);
        if let Err(spos) =
            self.stored.binary_search_by(|probe| probe.partial_cmp(&s).expect("finite outputs"))
        {
            self.stored.insert(spos, s);
        }
        if bin.forwards < cap {
            bin.forwards += 1;
            self.outbox.push(s);
        }
        true
    }
}

/// Bin of an output: `B_j = [2^{-j}, 2^{-j+1})`, clamped to the last bin.
fn bin_index(t: f64, num_bins: usize) -> usize {
    debug_assert!(t > 0.0 && t < 1.0, "outputs live in (0,1)");
    let j = (-t.log2()).floor() as usize; // t ∈ [2^-(j+1), 2^-j)
    j.min(num_bins - 1)
}

/// Sample the best (smallest) of `k` uniform outputs: inverse CDF of the
/// minimum, `1 − (1−u)^{1/k}` (with `u` uniform, so is `1−u`; computed
/// stably as `−expm1(ln(u)/k)`).
fn sample_min_of_uniforms(k: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (-(u.ln() / k).exp_m1()).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON)
}

/// Run the propagation protocol over the blue subgraph of `gg`.
pub fn run_string_protocol<G: GroupGraphView>(
    gg: &G,
    params: &StringParams,
    adversary: StringAdversary,
    rng: &mut StdRng,
) -> StringOutcome {
    let n = gg.len();
    let ln_n = (n.max(3) as f64).ln();
    let num_bins =
        ((params.bins_factor * ((n as f64) * params.t_epoch as f64).ln()).ceil() as usize).max(4);
    let cap = (params.c0 * ln_n).ceil() as u32;
    let rmax = (params.d0 * ln_n).ceil() as usize;
    let phase_len = (params.dprime * ln_n).ceil() as u64;
    let steps_total = 2 * phase_len;

    // Blue adjacency (undirected union of topology links) and the giant
    // component.
    let ring = gg.leaders().ring();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if gg.is_red(i) {
                return Vec::new();
            }
            gg.topology()
                .neighbors(ring.at(i))
                .into_iter()
                .map(|u| ring.index_of(u).expect("neighbor on ring"))
                .filter(|&j| !gg.is_red(j))
                .collect()
        })
        .collect();
    let giant = giant_component(&adj);
    let giant_set: HashSet<usize> = giant.iter().copied().collect();

    // Phase 1 result: each *good, blue, giant* leader holds its best
    // candidate (min of its Phase-1 attempts).
    let phase1_attempts =
        (params.attempts_per_step * (params.t_epoch / 2).saturating_sub(2 * phase_len)).max(1);
    let mut nodes: Vec<NodeState> = (0..n).map(|_| NodeState::new(num_bins)).collect();
    let mut injections: Vec<(u64, usize, Flying)> = Vec::new(); // (step, node, string)
    for &i in &giant {
        if gg.leaders().is_bad(i) {
            continue;
        }
        let t = sample_min_of_uniforms(phase1_attempts as f64, rng);
        injections.push((0, i, (t, i as u64)));
    }

    // Adversarial strings, released late into random giant nodes
    // (through red neighbors, which we model as direct injection — the
    // string itself is verifiable, only its timing is adversarial).
    match adversary {
        StringAdversary::None => {}
        StringAdversary::DelayedRelease { strings, release_frac, units } => {
            let total_attempts = units * params.attempts_per_step as f64 * params.t_epoch as f64;
            let release_step =
                ((steps_total as f64 * release_frac).floor() as u64).min(steps_total - 1);
            // Order statistics of the adversary's attempts via exponential
            // spacings: the j-th smallest of N uniforms ≈ (E₁+…+E_j)/N.
            let mut acc = 0.0f64;
            for j in 0..strings {
                acc += -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln();
                let t = (acc / total_attempts).min(0.999_999);
                if giant.is_empty() {
                    break;
                }
                let victim = giant[rng.gen_range(0..giant.len())];
                injections.push((release_step, victim, (t, u64::MAX - j as u64)));
            }
        }
        StringAdversary::ForcedRecords { strings, release_frac } => {
            let release_step =
                ((steps_total as f64 * release_frac).floor() as u64).min(steps_total - 1);
            // Outputs strictly below the good global minimum: each string
            // halves again so they are distinct records.
            let good_min = injections
                .iter()
                .map(|&(_, _, (t, _))| t)
                .fold(f64::INFINITY, f64::min)
                .max(f64::MIN_POSITIVE);
            for j in 0..strings {
                if giant.is_empty() {
                    break;
                }
                let t = (good_min * 0.5f64.powi(j as i32 + 1)).max(f64::MIN_POSITIVE);
                let victim = giant[rng.gen_range(0..giant.len())];
                injections.push((release_step, victim, (t, u64::MAX - j as u64)));
            }
        }
    }
    injections.sort_by_key(|&(step, node, _)| (step, node));

    let mut forwards = 0u64;
    let mut messages = 0u64;
    let mut inj_cursor = 0usize;

    for step in 0..steps_total {
        // Deliver scheduled injections.
        while inj_cursor < injections.len() && injections[inj_cursor].0 == step {
            let (_, node, s) = injections[inj_cursor];
            nodes[node].inbox.push_back(s);
            inj_cursor += 1;
        }
        // Each good giant node processes its inbox; acceptances go to the
        // outbox, delivered to neighbors at the next step.
        let mut deliveries: Vec<(usize, Flying)> = Vec::new();
        for &i in &giant {
            if gg.leaders().is_bad(i) {
                // A bad leader's group still has a good member majority if
                // blue — the group forwards correctly. Leader badness
                // does not change blue-group behaviour.
            }
            while let Some(s) = nodes[i].inbox.pop_front() {
                nodes[i].offer(s, cap, num_bins);
            }
            let out = std::mem::take(&mut nodes[i].outbox);
            for s in out {
                for &j in &adj[i] {
                    if giant_set.contains(&j) {
                        forwards += 1;
                        messages += (gg.group_size(i) * gg.group_size(j)) as u64;
                        deliveries.push((j, s));
                    }
                }
            }
        }
        for (j, s) in deliveries {
            nodes[j].inbox.push_back(s);
        }
        // End of Phase 2: snapshot minima.
        if step + 1 == phase_len {
            for &i in &giant {
                nodes[i].si_star = nodes[i].min_seen;
            }
        }
    }
    // Drain any final in-flight deliveries into the stores (the last
    // step's sends are received at the epoch boundary).
    for &i in &giant {
        while let Some(s) = nodes[i].inbox.pop_front() {
            nodes[i].offer(s, cap, num_bins);
        }
    }

    // Solution sets: the rmax smallest stored strings.
    let good_giant: Vec<usize> =
        giant.iter().copied().filter(|&i| !gg.leaders().is_bad(i)).collect();
    let set_sizes: Vec<f64> =
        good_giant.iter().map(|&i| nodes[i].stored.len().min(rmax) as f64).collect();

    // Lemma 12 (i): every si* is in everyone's solution set.
    let mut missing = 0u64;
    let si_stars: Vec<Flying> = good_giant.iter().filter_map(|&i| nodes[i].si_star).collect();
    for &u in &good_giant {
        let r_u: HashSet<u64> = nodes[u].stored.iter().take(rmax).map(|&(_, key)| key).collect();
        for &(_, key) in &si_stars {
            if !r_u.contains(&key) {
                missing += 1;
            }
        }
    }

    let global_min_key = good_giant
        .iter()
        .filter_map(|&i| nodes[i].min_seen)
        .min_by(|a, b| a.partial_cmp(b).expect("finite outputs"))
        .map(|(_, key)| key);

    StringOutcome {
        agreement: missing == 0,
        missing_pairs: missing,
        giant_size: good_giant.len(),
        solution_set_sizes: Summary::of(&set_sizes),
        forwards,
        messages,
        steps: steps_total,
        global_min_key,
    }
}

/// Largest connected component of the (blue) adjacency.
fn giant_component(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut best: Vec<usize> = Vec::new();
    for start in 0..n {
        if seen[start] || adj[start].is_empty() {
            continue;
        }
        let mut comp = vec![start];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if !seen[u] && !adj[u].is_empty() {
                    seen[u] = true;
                    comp.push(u);
                    queue.push_back(u);
                }
            }
        }
        if comp.len() > best.len() {
            best = comp;
        }
    }
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tg_core::{build_initial_graph, GroupGraph, Params, Population};
    use tg_crypto::OracleFamily;
    use tg_overlay::GraphKind;

    fn graph(n_good: usize, n_bad: usize, seed: u64) -> GroupGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n_good, n_bad, &mut rng);
        build_initial_graph(
            pop,
            GraphKind::Chord,
            OracleFamily::new(seed).h1,
            &Params::paper_defaults(),
        )
    }

    #[test]
    fn no_adversary_full_agreement() {
        let gg = graph(512, 0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out =
            run_string_protocol(&gg, &StringParams::default(), StringAdversary::None, &mut rng);
        assert!(out.agreement, "missing pairs: {}", out.missing_pairs);
        assert_eq!(out.giant_size, 512, "clean system: everyone is in the giant component");
        assert!(out.solution_set_sizes.max >= 1.0);
    }

    #[test]
    fn delayed_release_at_phase2_boundary_still_agrees() {
        // The paper's hardest instant: release at the last Phase-2 step
        // (frac 0.5); Phase 3 must still spread the strings.
        let gg = graph(512, 25, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let adv = StringAdversary::DelayedRelease { strings: 5, release_frac: 0.49, units: 25.0 };
        let out = run_string_protocol(&gg, &StringParams::default(), adv, &mut rng);
        assert!(out.agreement, "missing pairs: {}", out.missing_pairs);
    }

    #[test]
    fn forced_records_at_phase2_boundary_still_agree() {
        // The genuinely hard case: adversary strings that *beat* the good
        // global minimum, released at the last Phase-2 step — they become
        // some nodes' si* and Phase 3 alone must spread them to every
        // solution set.
        let gg = graph(512, 25, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let adv = StringAdversary::ForcedRecords { strings: 5, release_frac: 0.49 };
        let out = run_string_protocol(&gg, &StringParams::default(), adv, &mut rng);
        assert!(out.agreement, "missing pairs: {}", out.missing_pairs);
    }

    #[test]
    fn forced_records_released_in_phase3_are_harmless() {
        // Released after the si* snapshot: they reach only some nodes but
        // are nobody's si*, so (i) holds vacuously for them.
        let gg = graph(512, 25, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let adv = StringAdversary::ForcedRecords { strings: 5, release_frac: 0.95 };
        let out = run_string_protocol(&gg, &StringParams::default(), adv, &mut rng);
        assert!(out.agreement, "missing pairs: {}", out.missing_pairs);
    }

    #[test]
    fn weak_compute_adversary_strings_are_not_records() {
        // The E7 finding: at β = 5% the adversary's best outputs are
        // usually worse than the good minimum, so DelayedRelease barely
        // changes the flood volume relative to no adversary.
        let gg = graph(512, 25, 25);
        let params = StringParams::default();
        let mut rng = StdRng::seed_from_u64(26);
        let none = run_string_protocol(&gg, &params, StringAdversary::None, &mut rng);
        let mut rng = StdRng::seed_from_u64(26);
        let adv = StringAdversary::DelayedRelease { strings: 8, release_frac: 0.49, units: 25.0 };
        let weak = run_string_protocol(&gg, &params, adv, &mut rng);
        let delta = weak.forwards.abs_diff(none.forwards) as f64;
        assert!(
            delta < 0.1 * none.forwards as f64,
            "weak adversary moved forwards by {delta} of {}",
            none.forwards
        );
    }

    #[test]
    fn release_after_phase2_cannot_break_agreement() {
        // Strings released in Phase 3 are never anyone's si*, so (i)
        // holds trivially even though the strings reach only some nodes.
        let gg = graph(512, 25, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let adv = StringAdversary::DelayedRelease { strings: 5, release_frac: 0.9, units: 25.0 };
        let out = run_string_protocol(&gg, &StringParams::default(), adv, &mut rng);
        assert!(out.agreement);
    }

    #[test]
    fn solution_sets_are_logarithmic() {
        let gg = graph(1024, 50, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let params = StringParams::default();
        let out = run_string_protocol(&gg, &params, StringAdversary::None, &mut rng);
        let bound = (params.d0 * (gg.len() as f64).ln()).ceil();
        assert!(
            out.solution_set_sizes.max <= bound,
            "max |R| = {} vs ⌈d0·ln n⌉ = {bound:.0}",
            out.solution_set_sizes.max
        );
    }

    #[test]
    fn message_complexity_is_near_linear() {
        // Õ(n ln T): per-node sends are bounded by bins × cap × degree —
        // all polylog factors. One size cannot separate polylog from
        // linear, so check the *scaling*: quadrupling n must grow
        // per-node sends by a polylog factor (≈ (ln 4n/ln n)³ ≲ 1.8),
        // not by 4×.
        let params = StringParams::default();
        let per_node = |n: usize, seed: u64| -> f64 {
            let gg = graph(n, 0, seed);
            let mut rng = StdRng::seed_from_u64(seed + 1);
            let out = run_string_protocol(&gg, &params, StringAdversary::None, &mut rng);
            out.forwards as f64 / gg.len() as f64
        };
        let small = per_node(512, 9);
        let large = per_node(2048, 11);
        let ratio = large / small;
        assert!(ratio < 2.5, "per-node sends scaled ×{ratio:.2} for 4× n (linear would be ≈4)");
        // And the absolute bound from the protocol parameters holds.
        let n = 2048f64;
        let bins = (params.bins_factor * (n * params.t_epoch as f64).ln()).ceil();
        let cap = (params.c0 * n.ln()).ceil();
        let degree = 2.5 * n.ln();
        assert!(large < bins * cap * degree, "per-node sends {large:.0}");
    }

    #[test]
    fn bin_indexing() {
        assert_eq!(bin_index(0.75, 32), 0); // [1/2, 1)
        assert_eq!(bin_index(0.3, 32), 1); // [1/4, 1/2)
        assert_eq!(bin_index(0.2, 32), 2); // [1/8, 1/4)
        assert_eq!(bin_index(1e-30, 32), 31, "clamps to the last bin");
    }

    #[test]
    fn min_of_uniforms_sampler_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let small: f64 =
            (0..2000).map(|_| sample_min_of_uniforms(10.0, &mut rng)).sum::<f64>() / 2000.0;
        let large: f64 =
            (0..2000).map(|_| sample_min_of_uniforms(1000.0, &mut rng)).sum::<f64>() / 2000.0;
        // E[min of k uniforms] = 1/(k+1).
        assert!((small - 1.0 / 11.0).abs() < 0.01, "mean {small:.4} vs 1/11");
        assert!((large - 1.0 / 1001.0).abs() < 2e-4, "mean {large:.5} vs 1/1001");
    }
}
