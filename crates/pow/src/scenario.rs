//! The **total** scenario builder: every [`ScenarioSpec`] becomes a
//! [`Box<dyn EpochDriver>`] here, PoW defenses included.
//!
//! `tg_core::scenario` owns the spec, the driver trait, and the no-PoW
//! driver, but crate dependencies point upward, so the core-level
//! `ScenarioSpec::build` cannot construct the minting pipeline and
//! returns [`ScenarioError::NeedsPowLayer`] for specs that require it.
//! This module closes the gap with [`build`], which accepts every spec:
//!
//! * [`Defense::NoPow`] — delegated to the core builder (with the one
//!   exception of the [`StrategySpec::PrecomputeHoarder`] strategy,
//!   whose puzzle-grinding object lives in this crate even when it runs
//!   on the no-PoW pipeline, where it degrades to uniform placement),
//! * [`Defense::Pow`] + [`StringMode::Protocol`] — the full §IV
//!   [`FullSystem`]: the Appendix VIII string protocol runs over the
//!   operational graphs each epoch, minting binds to the agreed string
//!   (or stays frozen to genesis when the §IV-B defense is off), and a
//!   strategic spec threads its placement policy through
//!   [`StrategicPowProvider`],
//! * [`Defense::Pow`] + [`StringMode::Synthesized`] — the provider-level
//!   shortcut (the E10 sweep convention): the same minting pipeline
//!   driven inside a plain dynamic system with a synthesized per-epoch
//!   string under the same fresh-vs-frozen policy, and honest specs
//!   minting through the statistical [`MintingSim`].
//!
//! All three arms produce drivers over the **same**
//! [`EpochObservation`]; consumers never branch on which system is
//! behind the trait.

use crate::adversary::{MintScheme, PrecomputeHoarder, StrategicPowProvider};
use crate::miner::MintingSim;
use crate::provider::PowProvider;
use crate::puzzle::PuzzleParams;
use crate::strings::{StringAdversary, StringParams};
use crate::system::FullSystem;
use tg_core::dynamic::adversary::AdversaryStrategy;
use tg_core::dynamic::{BuildMode, IdentityProvider, StrategicProvider};
use tg_core::runtime::{EpochNet, RuntimeChoice};
use tg_core::scenario::{
    driver_with_provider, Defense, EpochDriver, EpochObservation, ObservationBatch, ScenarioError,
    ScenarioSpec, StrategySpec, StringAdversarySpec, StringMode,
};
use tg_core::GraphsView;
use tg_crypto::OracleFamily;
use tg_idspace::Id;

/// The easy hoarder calibration every sweep uses: exact grinding at
/// `τ = 0.02` stays cheap, and counts — not difficulty — are what the
/// §IV-B contrast measures.
pub fn hoarder_puzzle() -> PuzzleParams {
    PuzzleParams { tau: Id::from_f64(0.02), attempts_per_step: 1, t_epoch: 2 }
}

/// Build the runtime strategy object for any [`StrategySpec`] except
/// [`StrategySpec::Honest`] (which selects a provider, not a strategy).
pub fn build_strategy(spec: &StrategySpec) -> Option<Box<dyn AdversaryStrategy>> {
    match *spec {
        StrategySpec::PrecomputeHoarder { fam_seed, attempts } => Some(Box::new(
            PrecomputeHoarder::new(OracleFamily::new(fam_seed), hoarder_puzzle(), attempts),
        )),
        _ => spec.build_strategy(),
    }
}

/// The runtime string adversary a spec's declarative
/// [`StringAdversarySpec`] selects.
pub fn build_string_adversary(spec: &StringAdversarySpec) -> StringAdversary {
    match *spec {
        StringAdversarySpec::None => StringAdversary::None,
        StringAdversarySpec::DelayedRelease { strings, release_frac, units } => {
            StringAdversary::DelayedRelease { strings, release_frac, units }
        }
        StringAdversarySpec::ForcedRecords { strings, release_frac } => {
            StringAdversary::ForcedRecords { strings, release_frac }
        }
    }
}

/// Build the driver for **any** scenario — the entry point every
/// experiment, frontier cell, bench, and example constructs systems
/// through.
pub fn build(spec: &ScenarioSpec) -> Result<Box<dyn EpochDriver>, ScenarioError> {
    spec.check_transport()?;
    match spec.defense {
        Defense::NoPow => match spec.strategy {
            // The hoarder object lives in this crate; on the no-PoW
            // pipeline it degrades to uniform placement within budget.
            StrategySpec::PrecomputeHoarder { .. } => {
                let strategy = build_strategy(&spec.strategy).expect("hoarder is a strategy");
                let inner = Box::new(StrategicProvider::boxed(spec.n_good, spec.n_bad, strategy));
                Ok(driver_with_provider(spec, inner))
            }
            _ => spec.build(),
        },
        Defense::Pow { scheme, fresh_strings } => match spec.strings {
            StringMode::Protocol => build_protocol(spec, scheme, fresh_strings),
            StringMode::Synthesized => build_synthesized(spec, scheme, fresh_strings),
        },
    }
}

/// The full §IV protocol: [`FullSystem`] with the spec's strategy (if
/// any) minting through the real epoch-string agreement.
fn build_protocol(
    spec: &ScenarioSpec,
    scheme: MintScheme,
    fresh_strings: bool,
) -> Result<Box<dyn EpochDriver>, ScenarioError> {
    if spec.mode != BuildMode::DualGraph {
        return Err(ScenarioError::Unsupported(
            "the string protocol runs over the dual-graph construction only",
        ));
    }
    let mut sys = FullSystem::new_with_kernel(
        spec.params,
        spec.kind,
        PuzzleParams::calibrated(16, 2048),
        StringParams::default(),
        spec.n_good,
        spec.n_bad as f64,
        spec.idealized_good,
        spec.seed,
        spec.kernel,
        spec.capacity,
    );
    // `None` means honest: the statistical minting pipeline inside
    // `FullSystem` (no strategic provider to install).
    if let Some(strategy) = build_strategy(&spec.strategy) {
        sys = sys.with_adversary(StrategicPowProvider::boxed(
            spec.n_good,
            spec.n_bad as f64,
            scheme,
            strategy,
        ));
    }
    if !fresh_strings {
        sys = sys.with_frozen_strings();
    }
    sys.string_adversary = build_string_adversary(&spec.string_adversary);
    sys.dynamics.set_searches_per_epoch(spec.searches);
    // Under the actor runtime the protocol phases (string dissemination,
    // membership announcement, routing probes) go over the spec's
    // network; the genesis build stays trusted bootstrap.
    let net = match spec.runtime {
        RuntimeChoice::Sync => None,
        RuntimeChoice::Actor => Some(EpochNet::for_spec(spec)),
    };
    Ok(Box::new(FullDriver {
        sys,
        net,
        obs: EpochObservation::default(),
        batch: ObservationBatch::new(),
    }))
}

/// The provider-level shortcut: the minting pipeline (strategic or
/// statistical) inside a plain dynamic system, strings synthesized.
fn build_synthesized(
    spec: &ScenarioSpec,
    scheme: MintScheme,
    fresh_strings: bool,
) -> Result<Box<dyn EpochDriver>, ScenarioError> {
    let inner: Box<dyn IdentityProvider> = match build_strategy(&spec.strategy) {
        Some(strategy) => {
            let mut p =
                StrategicPowProvider::boxed(spec.n_good, spec.n_bad as f64, scheme, strategy);
            p.fresh_strings = fresh_strings;
            Box::new(p)
        }
        None => Box::new(PowProvider {
            sim: MintingSim {
                params: PuzzleParams::calibrated(16, 2048),
                n_good: spec.n_good,
                adversary_units: spec.n_bad as f64,
                idealized_good: spec.idealized_good,
            },
        }),
    };
    Ok(driver_with_provider(spec, inner))
}

/// The [`EpochDriver`] over the composed §IV [`FullSystem`]
/// (strings → minting → dynamics), with the protocol phases optionally
/// routed over an actor-runtime network.
pub struct FullDriver {
    /// The composed system (public so integration tests can reach the
    /// layers the observation aggregates away).
    sys: FullSystem,
    /// The actor-runtime network; `None` under [`RuntimeChoice::Sync`].
    net: Option<EpochNet>,
    obs: EpochObservation,
    batch: ObservationBatch,
}

impl FullDriver {
    /// The composed system behind the driver.
    pub fn system(&self) -> &FullSystem {
        &self.sys
    }
}

impl EpochDriver for FullDriver {
    fn step(&mut self) -> &EpochObservation {
        let late_before = self.net.as_ref().map(|n| n.stats().late);
        let r = self.sys.run_epoch_net(self.net.as_mut());
        self.obs.fill_dynamic(&r.dynamics, self.sys.dynamics.graphs());
        self.obs.bad_ids = r.minted_bad;
        self.obs.bad_share = r.bad_share;
        self.obs.epoch_string = Some(r.epoch_string);
        self.obs.strings_agreement = Some(r.strings.agreement);
        self.obs.verification_coverage = Some(r.verification_coverage);
        self.obs.minted_good = Some(r.minted_good);
        self.obs.good_misses = Some(r.good_misses);
        // Per-epoch late-window delta; `0` when no network is attached
        // (`fill_dynamic` already reset the field).
        if let (Some(before), Some(net)) = (late_before, self.net.as_ref()) {
            self.obs.late = net.stats().late - before;
        }
        &self.obs
    }

    fn observation(&self) -> &EpochObservation {
        &self.obs
    }

    fn graphs(&self) -> GraphsView<'_> {
        self.sys.dynamics.graphs()
    }

    fn epoch(&self) -> u64 {
        self.sys.dynamics.epoch()
    }

    fn batch(&self) -> &ObservationBatch {
        &self.batch
    }

    fn batch_mut(&mut self) -> &mut ObservationBatch {
        &mut self.batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_core::Params;
    use tg_overlay::GraphKind;

    fn base() -> ScenarioSpec {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.15;
        params.attack_requests_per_id = 1;
        ScenarioSpec::new(700, 41).params(params).budget(35).searches(200)
    }

    /// The conformance contract at the PoW layer: a spec-built
    /// [`FullDriver`] reproduces a hand-constructed [`FullSystem`] run
    /// field-for-field, honest and strategic alike.
    #[test]
    fn full_driver_matches_direct_full_system() {
        for (strategy, scheme) in [
            (StrategySpec::Honest, MintScheme::TwoHash),
            (StrategySpec::GapFilling, MintScheme::SingleHash),
        ] {
            let spec = base()
                .strategy(strategy)
                .defense(Defense::Pow { scheme, fresh_strings: true })
                .topology(GraphKind::Chord);
            let mut driver = build(&spec).unwrap();

            let mut sys = FullSystem::new(
                spec.params,
                spec.kind,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                spec.n_good,
                spec.n_bad as f64,
                true,
                spec.seed,
            );
            if strategy != StrategySpec::Honest {
                sys = sys.with_adversary(StrategicPowProvider::boxed(
                    spec.n_good,
                    spec.n_bad as f64,
                    scheme,
                    strategy.build_strategy().unwrap(),
                ));
            }
            sys.dynamics.set_searches_per_epoch(spec.searches);

            for _ in 0..2 {
                let r = sys.run_epoch();
                let o = driver.step();
                assert_eq!(o.epoch, r.epoch);
                assert_eq!(o.epoch_string, Some(r.epoch_string));
                assert_eq!(o.strings_agreement, Some(r.strings.agreement));
                assert_eq!(o.bad_ids, r.minted_bad);
                assert_eq!(o.bad_share, r.bad_share);
                assert_eq!(o.minted_good, Some(r.minted_good));
                assert_eq!(o.frac_red, r.dynamics.frac_red);
                assert_eq!(o.search_success_dual, r.dynamics.search_success_dual);
            }
        }
    }

    /// The synthesized-strings arm reproduces the provider-level
    /// composition (pow provider inside a plain dynamic system).
    #[test]
    fn synthesized_driver_matches_direct_provider_composition() {
        let spec = base()
            .strategy(StrategySpec::GapFilling)
            .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true })
            .strings(StringMode::Synthesized)
            .topology(GraphKind::D2B);
        let mut driver = build(&spec).unwrap();

        let mut provider = StrategicPowProvider::boxed(
            spec.n_good,
            spec.n_bad as f64,
            MintScheme::SingleHash,
            Box::new(tg_core::dynamic::GapFilling),
        );
        let mut sys = tg_core::dynamic::DynamicSystem::new(
            spec.params,
            spec.kind,
            spec.mode,
            &mut provider,
            spec.seed,
        );
        sys.searches_per_epoch = spec.searches;

        for _ in 0..2 {
            let r = sys.advance_epoch(&mut provider);
            let o = driver.step();
            assert_eq!(o.epoch, r.epoch);
            assert_eq!(o.frac_red, r.frac_red);
            assert_eq!(o.search_success_dual, r.search_success_dual);
            assert!(o.epoch_string.is_none(), "synthesized strings never reach the observation");
        }
    }

    /// Every defense × string-mode × strategy family combination builds
    /// and steps (the split the API erases).
    #[test]
    fn every_arm_builds_and_steps() {
        let hoarder = StrategySpec::PrecomputeHoarder { fam_seed: 9, attempts: 200 };
        let specs = [
            base().strategy(hoarder),
            base()
                .strategy(hoarder)
                .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false })
                .strings(StringMode::Synthesized),
            base().defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true }),
            base()
                .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true })
                .strings(StringMode::Synthesized),
        ];
        for spec in specs {
            let mut driver = build(&spec).unwrap();
            let o = driver.step();
            assert_eq!(o.epoch, 2, "spec {}", spec.label());
            assert!(o.total_groups > 0);
        }
    }

    /// The tentpole equivalence at the PoW layer: the actor runtime over
    /// a perfect transport reproduces the synchronous driver's
    /// observations byte-identically, on every builder arm.
    #[test]
    fn actor_runtime_over_perfect_transport_matches_sync() {
        let specs = [
            base().defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true }),
            base()
                .strategy(StrategySpec::GapFilling)
                .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true }),
            base()
                .strategy(StrategySpec::GapFilling)
                .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: false })
                .strings(StringMode::Synthesized),
            base().strategy(StrategySpec::PrecomputeHoarder { fam_seed: 9, attempts: 200 }),
        ];
        for spec in specs {
            let mut sync = build(&spec).unwrap();
            let mut actor = build(&spec.clone().runtime(RuntimeChoice::Actor)).unwrap();
            for _ in 0..2 {
                assert_eq!(
                    format!("{:?}", sync.step()),
                    format!("{:?}", actor.step()),
                    "spec {}",
                    spec.label()
                );
            }
        }
    }

    /// Faults reach the PoW pipeline: drops lose announcements (fewer
    /// delivered good IDs) and fail probe chains (lower success).
    #[test]
    fn lossy_transport_degrades_the_full_protocol() {
        let spec = base()
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true })
            .runtime(RuntimeChoice::Actor);
        let mut perfect = build(&spec).unwrap();
        let mut lossy = build(&spec.clone().drop_rate(0.4)).unwrap();
        let (mut fewer_good, mut lower_success) = (false, false);
        for _ in 0..2 {
            let (lg, ls) = {
                let o = lossy.step();
                (o.minted_good.unwrap(), o.search_success_dual)
            };
            let p = perfect.step();
            if lg < p.minted_good.unwrap() {
                fewer_good = true;
            }
            if ls < p.search_success_dual {
                lower_success = true;
            }
        }
        assert!(fewer_good, "drops must lose good announcements");
        assert!(lower_success, "drops must fail probe chains");
    }

    #[test]
    fn protocol_over_single_graph_is_unsupported() {
        let spec = base()
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true })
            .build_mode(BuildMode::SingleGraph);
        assert!(matches!(build(&spec), Err(ScenarioError::Unsupported(_))));
    }

    /// The total builder enforces the transport/runtime pairing too:
    /// `transport=socket` + `runtime=sync` fails with the typed error
    /// before any system is constructed, on every defense arm.
    #[test]
    fn socket_without_actor_runtime_is_rejected_by_total_builder() {
        use tg_core::scenario::TransportChoice;
        for spec in [
            base(),
            base().defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true }),
        ] {
            let bad = spec.transport(TransportChoice::Socket);
            assert!(
                matches!(build(&bad), Err(ScenarioError::NeedsActorRuntime(_))),
                "spec {} must be rejected",
                bad.label()
            );
            let ok = bad.runtime(RuntimeChoice::Actor);
            assert!(build(&ok).is_ok(), "spec {} must build", ok.label());
        }
    }

    /// The spec-level string-adversary axis reaches the composed
    /// system: a `stradv=` spec behaves exactly like the hand-set
    /// `FullSystem::string_adversary` field it replaces, and the knob
    /// measurably perturbs the string layer.
    #[test]
    fn spec_string_adversary_matches_hand_built_system() {
        let adv = StringAdversarySpec::ForcedRecords { strings: 4, release_frac: 0.5 };
        let spec = base()
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true })
            .string_adversary(adv);
        let mut driver = build(&spec).unwrap();

        let mut sys = FullSystem::new(
            spec.params,
            spec.kind,
            PuzzleParams::calibrated(16, 2048),
            StringParams::default(),
            spec.n_good,
            spec.n_bad as f64,
            true,
            spec.seed,
        );
        sys.string_adversary = StringAdversary::ForcedRecords { strings: 4, release_frac: 0.5 };
        sys.dynamics.set_searches_per_epoch(spec.searches);

        let mut diverged_from_clean = false;
        let mut clean = build(
            &base().defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true }),
        )
        .unwrap();
        for _ in 0..2 {
            let r = sys.run_epoch();
            let o = driver.step();
            assert_eq!(o.epoch_string, Some(r.epoch_string));
            assert_eq!(o.strings_agreement, Some(r.strings.agreement));
            assert_eq!(o.verification_coverage, Some(r.verification_coverage));
            if o.epoch_string != clean.step().epoch_string {
                diverged_from_clean = true;
            }
        }
        assert!(diverged_from_clean, "forced records must perturb the agreed strings");
    }

    /// Real PoW observations survive the result-store line codec: every
    /// row the store would persist for a strategic `FullDriver` run
    /// decodes back bit-identical (the warm-replay contract at the
    /// layer that actually produces the numbers).
    #[test]
    fn pow_observations_round_trip_through_the_store_codec() {
        use tg_core::scenario::ObsRow;
        let spec = base()
            .strategy(StrategySpec::GapFilling)
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true });
        let mut driver = build(&spec).unwrap();
        for _ in 0..3 {
            let row = ObsRow::of(driver.step());
            let back = ObsRow::decode_line(&row.encode_line()).unwrap();
            assert_eq!(back.epoch, row.epoch);
            for (got, want) in [
                (back.search_success_single, row.search_success_single),
                (back.search_success_dual, row.search_success_dual),
                (back.frac_red_s0, row.frac_red_s0),
                (back.bad_share, row.bad_share),
                (back.mean_memberships, row.mean_memberships),
                (back.minted_good, row.minted_good),
                (back.good_misses, row.good_misses),
            ] {
                assert_eq!(got.to_bits(), want.to_bits());
            }
            assert_eq!(
                (back.captured_groups, back.total_groups, back.bad_ids),
                (row.captured_groups, row.total_groups, row.bad_ids)
            );
        }
    }
}
