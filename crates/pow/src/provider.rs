//! Closing the loop: an [`IdentityProvider`] backed by the puzzle
//! pipeline.
//!
//! §II–III run on the *assumption* that each epoch's adversary holds at
//! most `≈ βn` u.a.r. IDs; §IV proves PoW enforces it. `PowProvider`
//! feeds the dynamic construction with IDs that actually come out of the
//! minting simulation, so end-to-end runs (experiment E6/E4 composition,
//! `examples/pow_identity.rs`) exercise the full §II+§III+§IV stack.

use crate::miner::MintingSim;
use rand::rngs::StdRng;
use tg_core::dynamic::{AdversaryView, EpochIds, IdentityProvider};

/// Per-epoch IDs minted through proof-of-work.
#[derive(Clone, Copy, Debug)]
pub struct PowProvider {
    /// The minting simulation (difficulty, compute split, fidelity).
    pub sim: MintingSim,
}

impl IdentityProvider for PowProvider {
    fn ids_for_epoch(
        &mut self,
        _epoch: u64,
        _view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let out = self.sim.run_window(rng);
        EpochIds { good: out.good_ids, bad: out.bad_ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puzzle::PuzzleParams;
    use rand::SeedableRng;
    use tg_core::dynamic::{BuildMode, DynamicSystem};
    use tg_core::Params;
    use tg_overlay::GraphKind;

    fn provider(n_good: usize, beta: f64) -> PowProvider {
        PowProvider {
            sim: MintingSim {
                params: PuzzleParams::calibrated(16, 2048),
                n_good,
                adversary_units: beta * n_good as f64,
                idealized_good: true,
            },
        }
    }

    #[test]
    fn provider_outputs_track_beta() {
        let mut p = provider(1000, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let ids = p.ids_for_epoch(1, &AdversaryView::genesis(1), &mut rng);
        assert_eq!(ids.good.len(), 1000);
        let bad = ids.bad.len() as f64;
        assert!((25.0..80.0).contains(&bad), "≈50 expected, got {bad}");
    }

    /// End-to-end: the §III dynamic system running on §IV-minted IDs
    /// stays robust across epochs.
    #[test]
    fn dynamic_system_on_pow_identities() {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.1;
        params.attack_requests_per_id = 0;
        let mut prov = provider(400, 0.05);
        let mut sys =
            DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut prov, 42);
        for _ in 0..3 {
            let r = sys.advance_epoch(&mut prov);
            assert!(
                r.search_success_dual > 0.85,
                "epoch {}: dual success {:.3}",
                r.epoch,
                r.search_success_dual
            );
        }
    }
}
