//! The complete tiny-groups system: §II + §III + §IV composed.
//!
//! One [`FullSystem::run_epoch`] call performs the paper's whole
//! per-epoch pipeline:
//!
//! 1. **strings** — the Appendix VIII protocol runs over the current
//!    operational group graph; the agreed minimum becomes the next epoch
//!    string `r_i` (every good ID can verify any ID signed by a string
//!    in its solution set),
//! 2. **minting** — participants grind puzzles against `r_i`
//!    (`g(σ ⊕ r_i) ≤ τ`, ID = `f(g(σ ⊕ r_i))`); the adversary's pooled
//!    compute yields its `≈ βn` u.a.r. IDs (Lemma 11),
//! 3. **dynamics** — the §III epoch advance: churn, dual-search
//!    construction of the next two group graphs through the current
//!    ones, robustness measurement, swap.
//!
//! This is the type a downstream system would embed; the examples and
//! integration tests drive it end to end.
//!
//! The minting step runs at two fidelities. By default it is the
//! statistical [`MintingSim`] (Lemma 11's counts, uniform values). With
//! [`FullSystem::with_adversary`] it becomes the strategic pipeline: a
//! [`StrategicPowProvider`] whose placement strategy observes the
//! previous epoch's operational graphs and the **protocol-agreed epoch
//! string** before committing its IDs — so the adaptive adversaries of
//! `tg-core::dynamic::adversary` (and the §IV-B solution hoarder) face
//! the real epoch-string mechanics rather than a synthesized stand-in.

use crate::adversary::{StrategicPowProvider, GENESIS_STRING};
use crate::miner::MintingSim;
use crate::puzzle::PuzzleParams;
use crate::strings::{run_string_protocol, StringAdversary, StringOutcome, StringParams};
use rand::rngs::StdRng;
use tg_core::dynamic::{
    AdversaryView, BuildMode, EpochIds, EpochKernel, EpochReport, IdentityProvider, KernelChoice,
    WithEpochString,
};
use tg_core::runtime::{EpochNet, NetFilter};
use tg_core::Params;
use tg_overlay::GraphKind;
use tg_sim::stream_rng;

/// A provider that hands the dynamic layer a pre-minted ID set.
struct PreMinted {
    ids: Option<EpochIds>,
}

impl IdentityProvider for PreMinted {
    fn ids_for_epoch(
        &mut self,
        _epoch: u64,
        _view: &AdversaryView<'_>,
        _rng: &mut StdRng,
    ) -> EpochIds {
        self.ids.take().expect("one epoch's IDs staged per advance")
    }
}

/// Wraps the strategic provider to record what one epoch minted (the
/// dynamic layer consumes the IDs, so they are measured on the way in).
/// The protocol-agreed epoch string reaches the provider's
/// [`AdversaryView`] through the composed
/// [`tg_core::dynamic::WithEpochString`] — the dynamic layer itself
/// hands providers a string-free view, so the composed system injects
/// the string it agreed on at this layer. Generic over the inner chain
/// so the actor runtime can slot its network filter inside: the counter
/// then measures what the network *delivered*, not what was minted.
struct Counting<P> {
    inner: P,
    minted: Option<(usize, usize, f64)>,
}

impl<P: IdentityProvider> IdentityProvider for Counting<P> {
    fn ids_for_epoch(
        &mut self,
        epoch: u64,
        view: &AdversaryView<'_>,
        rng: &mut StdRng,
    ) -> EpochIds {
        let ids = self.inner.ids_for_epoch(epoch, view, rng);
        self.minted = Some((ids.good.len(), ids.bad.len(), ids.bad_ring_share()));
        ids
    }
}

/// Everything one epoch produced.
#[derive(Clone, Debug)]
pub struct FullEpochReport {
    /// Epoch index the new graphs serve.
    pub epoch: u64,
    /// String-protocol measurements (Lemma 12).
    pub strings: StringOutcome,
    /// The epoch string agreed for minting.
    pub epoch_string: u64,
    /// Fraction of good giant-component pairs able to verify each
    /// other's signing strings (1.0 when `strings.agreement`).
    pub verification_coverage: f64,
    /// Good IDs minted for the next epoch.
    pub minted_good: usize,
    /// Adversarial IDs minted (Lemma 11's `≈ βn`).
    pub minted_bad: usize,
    /// Good participants who missed the minting window (realistic mode;
    /// always 0 on the strategic pipeline, which mints idealized good
    /// IDs).
    pub good_misses: usize,
    /// Key-space fraction owned by the minted bad IDs under the
    /// successor rule (the adversary's recruitment probability per
    /// membership draw) — ≈ β when minting forces uniform placement,
    /// amplified when a placement strategy gets through.
    pub bad_share: f64,
    /// The §III dynamic-epoch report.
    pub dynamics: EpochReport,
}

/// The composed system.
pub struct FullSystem {
    /// The §III dynamic layer (owns the operational group graphs),
    /// behind the kernel dispatcher: the legacy per-group path or the
    /// arena/SoA path, chosen at construction — identical epochs either
    /// way.
    pub dynamics: EpochKernel,
    /// Puzzle difficulty/rate parameters.
    pub puzzle: PuzzleParams,
    /// String-protocol parameters.
    pub string_params: StringParams,
    /// String-release adversary applied each epoch.
    pub string_adversary: StringAdversary,
    /// Good participants per epoch.
    pub n_good: usize,
    /// Adversary compute in units (`≈ βn`).
    pub adversary_units: f64,
    /// Idealized good minting (paper assumption) vs realistic misses.
    pub idealized_good: bool,
    /// When set, identities are minted through this strategic pipeline
    /// instead of the statistical [`MintingSim`]: the adversary's
    /// placement policy observes the previous epoch's operational graphs
    /// *and* the protocol-agreed epoch string before committing its IDs
    /// — the §IV-B mechanics (hoarding, stale-solution culling,
    /// re-minting) facing an adaptive adversary.
    pub adversary: Option<StrategicPowProvider>,
    /// Whether minting binds to the freshly agreed string each epoch
    /// (§IV-B). With `false` the genesis string stays in force forever —
    /// the broken deployment that lets pre-computation hoards compound.
    pub fresh_strings: bool,
    epoch_string: u64,
    master_seed: u64,
}

impl FullSystem {
    /// Boot the system: initial graphs from a first minting window
    /// against a genesis string.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: Params,
        kind: GraphKind,
        puzzle: PuzzleParams,
        string_params: StringParams,
        n_good: usize,
        adversary_units: f64,
        idealized_good: bool,
        master_seed: u64,
    ) -> Self {
        Self::new_with_kernel(
            params,
            kind,
            puzzle,
            string_params,
            n_good,
            adversary_units,
            idealized_good,
            master_seed,
            KernelChoice::Legacy,
            None,
        )
    }

    /// [`FullSystem::new`] with an explicit epoch kernel and arena
    /// capacity hint (how `tg_pow::scenario` applies the spec's scale
    /// knobs to the full protocol).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_kernel(
        params: Params,
        kind: GraphKind,
        puzzle: PuzzleParams,
        string_params: StringParams,
        n_good: usize,
        adversary_units: f64,
        idealized_good: bool,
        master_seed: u64,
        kernel: KernelChoice,
        capacity: Option<usize>,
    ) -> Self {
        let sim = MintingSim { params: puzzle, n_good, adversary_units, idealized_good };
        let mut rng = stream_rng(master_seed, "full-init-mint", 0);
        let minted = sim.run_window(&mut rng);
        let mut provider =
            PreMinted { ids: Some(EpochIds { good: minted.good_ids, bad: minted.bad_ids }) };
        let dynamics = EpochKernel::new(
            kernel,
            params,
            kind,
            BuildMode::DualGraph,
            &mut provider,
            master_seed,
            capacity,
        );
        FullSystem {
            dynamics,
            puzzle,
            string_params,
            string_adversary: StringAdversary::None,
            n_good,
            adversary_units,
            idealized_good,
            adversary: None,
            fresh_strings: true,
            epoch_string: GENESIS_STRING,
            master_seed,
        }
    }

    /// Install a strategic adversary: from the next [`FullSystem::run_epoch`]
    /// on, identities are minted through `provider` (placement strategy +
    /// minting scheme) with the real protocol-agreed epoch string in its
    /// [`AdversaryView`]. The initial graphs built by [`FullSystem::new`]
    /// predate the adversary's first observation, matching the paper's
    /// trusted-bootstrap assumption (Appendix X).
    pub fn with_adversary(mut self, provider: StrategicPowProvider) -> Self {
        self.adversary = Some(provider);
        self
    }

    /// Disable the §IV-B fresh-string defense: minting stays bound to the
    /// genesis string forever (the string protocol still runs and agrees;
    /// the deployment just never rotates its minting string).
    pub fn with_frozen_strings(mut self) -> Self {
        self.fresh_strings = false;
        self
    }

    /// The current epoch string.
    pub fn epoch_string(&self) -> u64 {
        self.epoch_string
    }

    /// Run one full epoch: strings → minting → dynamics.
    ///
    /// Equivalent to [`FullSystem::run_epoch_net`] with no network — one
    /// synchronous in-process step.
    pub fn run_epoch(&mut self) -> FullEpochReport {
        self.run_epoch_net(None)
    }

    /// Run one full epoch with the protocol phases routed over a
    /// network (the actor-runtime decomposition):
    ///
    /// 1. **strings** — after agreement, the string is broadcast; nodes
    ///    the broadcast misses cannot verify peers, so
    ///    `verification_coverage` is scaled by the reach fraction,
    /// 2. **minting** — every minted good ID announces itself over the
    ///    transport; announcements the network loses never enter the
    ///    epoch's ring (the adversary bypasses the network — the
    ///    worst-case insider), and `minted_good`/`bad_share` measure the
    ///    *delivered* population,
    /// 3. **dynamics** — unchanged, then measured search success is
    ///    scaled by the fraction of completed routing-probe chains.
    ///
    /// `net: None` (or a perfect transport) reproduces the synchronous
    /// [`FullSystem::run_epoch`] byte-identically.
    pub fn run_epoch_net(&mut self, mut net: Option<&mut EpochNet>) -> FullEpochReport {
        let epoch = self.dynamics.epoch();

        // 1. Agree on the next epoch string over the operational graph.
        let mut srng = stream_rng(self.master_seed, "full-strings", epoch);
        let strings = {
            let side0 = self.dynamics.graphs().side(0);
            run_string_protocol(&side0, &self.string_params, self.string_adversary, &mut srng)
        };
        let pairs = (strings.giant_size as u64).pow(2);
        let mut verification_coverage =
            if pairs == 0 { 0.0 } else { 1.0 - strings.missing_pairs as f64 / pairs as f64 };
        // Fold the agreed minimum into the epoch string (a fresh string
        // per epoch is what defeats pre-computation, §IV-B).
        let next_string = strings
            .global_min_key
            .map(|k| k ^ self.epoch_string.rotate_left(17) ^ epoch)
            .unwrap_or_else(|| self.epoch_string.wrapping_mul(0x9e3779b97f4a7c15) ^ epoch);

        // The string minting binds to: the freshly agreed one under the
        // §IV-B defense, the genesis constant when the defense is off.
        let mint_string = if self.fresh_strings { next_string } else { GENESIS_STRING };

        // Disseminate the agreed string over the network; unreached
        // nodes cannot verify peers. The `< 1.0` guard keeps the
        // perfect-transport path bit-exact.
        if let Some(n) = net.as_deref_mut() {
            let reach = n.string_phase(epoch, mint_string);
            if reach < 1.0 {
                verification_coverage *= reach;
            }
        }

        // 2 + 3. Mint against that string and advance the dynamic layer.
        let (minted_good, minted_bad, good_misses, bad_share, mut dynamics) =
            if let Some(adv) = self.adversary.as_mut() {
                // Strategic pipeline: minting happens inside the epoch
                // advance, where the provider's view carries the churned
                // operational graphs and the string in force — hoarders
                // grind against the real string, and stale solutions die
                // (or compound, under frozen strings) at verification.
                let mut ws = WithEpochString { inner: adv, epoch_string: Some(mint_string) };
                match net.as_deref_mut() {
                    Some(n) => {
                        // Network inside the counter: minted counts
                        // measure what the announcement phase delivered.
                        let mut counting =
                            Counting { inner: NetFilter { inner: &mut ws, net: n }, minted: None };
                        let dynamics = self.dynamics.advance_epoch(&mut counting);
                        let (good, bad, share) =
                            counting.minted.expect("provider runs once per advance");
                        (good, bad, 0, share, dynamics)
                    }
                    None => {
                        let mut counting = Counting { inner: &mut ws, minted: None };
                        let dynamics = self.dynamics.advance_epoch(&mut counting);
                        let (good, bad, share) =
                            counting.minted.expect("provider runs once per advance");
                        (good, bad, 0, share, dynamics)
                    }
                }
            } else {
                // Statistical pipeline (Lemma 11's counts, uniform values).
                let sim = MintingSim {
                    params: self.puzzle,
                    n_good: self.n_good,
                    adversary_units: self.adversary_units,
                    idealized_good: self.idealized_good,
                };
                let mut mrng = stream_rng(self.master_seed ^ mint_string, "full-mint", epoch);
                let minted = sim.run_window(&mut mrng);
                let mut ids = EpochIds { good: minted.good_ids, bad: minted.bad_ids };
                if let Some(n) = net.as_deref_mut() {
                    n.announce_phase(epoch, &mut ids);
                }
                let share = ids.bad_ring_share();
                let counts = (ids.good.len(), ids.bad.len(), minted.good_misses, share);
                let mut provider = PreMinted { ids: Some(ids) };
                let dynamics = self.dynamics.advance_epoch(&mut provider);
                (counts.0, counts.1, counts.2, counts.3, dynamics)
            };

        // Routing probes: scale measured search success by the fraction
        // of probe chains the network completed.
        if let Some(n) = net {
            let f = n.probe_phase(dynamics.epoch, self.dynamics.searches_per_epoch());
            if f < 1.0 {
                dynamics.search_success_single *= f;
                dynamics.search_success_dual *= f;
            }
        }

        self.epoch_string = next_string;
        FullEpochReport {
            epoch: dynamics.epoch,
            strings,
            epoch_string: next_string,
            verification_coverage,
            minted_good,
            minted_bad,
            good_misses,
            bad_share,
            dynamics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::MintScheme;

    fn system(seed: u64) -> FullSystem {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.15;
        params.attack_requests_per_id = 1;
        let mut sys = FullSystem::new(
            params,
            GraphKind::Chord,
            PuzzleParams::calibrated(16, 2048),
            StringParams::default(),
            700,
            35.0, // β = 5%
            true,
            seed,
        );
        sys.dynamics.set_searches_per_epoch(200);
        sys
    }

    #[test]
    fn full_pipeline_stays_robust_over_epochs() {
        let mut sys = system(41);
        let mut last_string = sys.epoch_string();
        for _ in 0..4 {
            let r = sys.run_epoch();
            assert!(r.strings.agreement, "epoch {}: string disagreement", r.epoch);
            assert_eq!(r.verification_coverage, 1.0);
            assert_ne!(r.epoch_string, last_string, "epoch strings must refresh");
            last_string = r.epoch_string;
            let bad_ratio = r.minted_bad as f64 / 35.0;
            assert!((0.5..1.6).contains(&bad_ratio), "minted_bad {}", r.minted_bad);
            assert!(
                r.dynamics.search_success_dual > 0.9,
                "epoch {}: dual success {:.3}",
                r.epoch,
                r.dynamics.search_success_dual
            );
        }
    }

    #[test]
    fn full_pipeline_with_string_adversary() {
        let mut sys = system(43);
        sys.string_adversary =
            crate::strings::StringAdversary::ForcedRecords { strings: 4, release_frac: 0.49 };
        for _ in 0..3 {
            let r = sys.run_epoch();
            assert!(r.strings.agreement, "epoch {}: forced records broke agreement", r.epoch);
            assert!(r.dynamics.search_success_dual > 0.9);
        }
    }

    #[test]
    fn realistic_minting_shrinks_population_but_survives() {
        let mut sys = system(47);
        sys.idealized_good = false;
        let r = sys.run_epoch();
        // ≈ 1/e of good participants miss the window; the system keeps
        // running on the (1 − 1/e) that minted.
        assert!(r.good_misses > 0);
        let frac = r.minted_good as f64 / 700.0;
        assert!((0.55..0.75).contains(&frac), "minted fraction {frac:.3}");
        assert!(r.dynamics.search_success_dual > 0.85);
    }

    #[test]
    fn deterministic() {
        let mut a = system(53);
        let mut b = system(53);
        let ra = a.run_epoch();
        let rb = b.run_epoch();
        assert_eq!(ra.epoch_string, rb.epoch_string);
        assert_eq!(ra.minted_bad, rb.minted_bad);
        assert_eq!(ra.dynamics.frac_red, rb.dynamics.frac_red);
    }

    #[test]
    fn statistical_minting_keeps_bad_share_near_beta() {
        let mut sys = system(59);
        let r = sys.run_epoch();
        // β = 35/735 ≈ 0.0476; uniform minting keeps the key-space share
        // in the same ballpark.
        assert!((0.02..0.10).contains(&r.bad_share), "bad_share {:.4}", r.bad_share);
    }

    fn strategic_system(seed: u64, scheme: MintScheme) -> FullSystem {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.15;
        params.attack_requests_per_id = 1;
        let mut sys = FullSystem::new(
            params,
            GraphKind::Chord,
            PuzzleParams::calibrated(16, 2048),
            StringParams::default(),
            700,
            35.0, // β ≈ 5%
            true,
            seed,
        )
        .with_adversary(StrategicPowProvider::boxed(
            700,
            35.0,
            scheme,
            Box::new(tg_core::dynamic::GapFilling),
        ));
        sys.dynamics.set_searches_per_epoch(200);
        sys
    }

    /// The full protocol against a placement strategy: the single-hash
    /// ablation lets gap-filling through, the paper's `f∘g` holds the
    /// share at the uniform noise floor — measured on the real
    /// epoch-string pipeline, not the abstract dynamic layer.
    #[test]
    fn strategic_single_hash_realizes_placement_fog_discards_it() {
        let last_share = |scheme| {
            let mut sys = strategic_system(61, scheme);
            (0..2).map(|_| sys.run_epoch().bad_share).last().unwrap()
        };
        let beta = 35.0 / 735.0;
        let single = last_share(MintScheme::SingleHash);
        let fog = last_share(MintScheme::TwoHash);
        assert!(single > 2.0 * beta, "single-hash share {single:.4} must be amplified");
        assert!(fog < 2.0 * beta, "f∘g share {fog:.4} must stay near β {beta:.4}");
    }

    /// §IV-B over the real protocol strings: a hoarder grinding against
    /// the string in force is held to one window's yield when the agreed
    /// string rotates, and compounds epoch over epoch when the
    /// deployment freezes its minting string.
    #[test]
    fn hoarder_vs_real_epoch_strings() {
        let minted_bad = |frozen: bool| -> Vec<usize> {
            let mut params = Params::paper_defaults();
            params.churn_rate = 0.15;
            params.attack_requests_per_id = 1;
            let fam = tg_crypto::OracleFamily::new(71);
            let puzzle = PuzzleParams {
                tau: tg_idspace::Id::from_f64(0.02),
                attempts_per_step: 1,
                t_epoch: 2,
            };
            let hoarder = crate::adversary::PrecomputeHoarder::new(fam, puzzle, 2000);
            let mut sys = FullSystem::new(
                params,
                GraphKind::Chord,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                700,
                35.0,
                true,
                67,
            )
            .with_adversary(StrategicPowProvider::boxed(
                700,
                35.0,
                MintScheme::TwoHash,
                Box::new(hoarder),
            ));
            if frozen {
                sys = sys.with_frozen_strings();
            }
            sys.dynamics.set_searches_per_epoch(200);
            (0..4).map(|_| sys.run_epoch().minted_bad).collect()
        };
        let fresh = minted_bad(false);
        let frozen = minted_bad(true);
        for &c in &fresh {
            assert!(c < 100, "fresh strings must cull the hoard each epoch: {fresh:?}");
        }
        assert!(
            *frozen.last().unwrap() > 3 * frozen[0] / 2
                && *frozen.last().unwrap() > 2 * *fresh.last().unwrap(),
            "frozen-string hoard must compound: frozen {frozen:?} vs fresh {fresh:?}"
        );
    }

    /// The churn-timed adversary composed through the full §IV protocol
    /// (string agreement + strategic minting): under light churn it
    /// camouflages — a retainer-sized minting count and a near-uniform
    /// key-space share — and the epoch a heavy departure wave lands it
    /// spends the whole budget end-on (realized here by the single-hash
    /// ablation; `f∘g` would discard the placement but not the timing).
    #[test]
    fn churn_timed_strikes_only_after_heavy_departure_over_full_protocol() {
        let run = |churn: f64| -> (usize, f64) {
            let mut params = Params::paper_defaults();
            params.churn_rate = churn;
            params.attack_requests_per_id = 0;
            let mut sys = FullSystem::new(
                params,
                GraphKind::Chord,
                PuzzleParams::calibrated(16, 2048),
                StringParams::default(),
                700,
                35.0, // β ≈ 5%
                true,
                83,
            )
            .with_adversary(StrategicPowProvider::boxed(
                700,
                35.0,
                MintScheme::SingleHash,
                Box::new(tg_core::dynamic::ChurnTimed::default()),
            ));
            sys.dynamics.set_searches_per_epoch(100);
            (0..2).map(|_| sys.run_epoch()).map(|r| (r.minted_bad, r.bad_share)).last().unwrap()
        };
        let (quiet_bad, quiet_share) = run(0.05);
        let (heavy_bad, heavy_share) = run(0.25);
        // Quiet: ≈ 20% of the ≈35-solution window; heavy: all of it.
        assert!(quiet_bad < 18, "quiet epochs must hold back: minted {quiet_bad}");
        assert!(heavy_bad > 22, "strike epochs must spend the budget: minted {heavy_bad}");
        let beta = 35.0 / 735.0;
        assert!(
            heavy_share > 2.0 * beta,
            "single-hash strike share {heavy_share:.4} must be amplified over β {beta:.4}"
        );
        assert!(
            quiet_share < heavy_share / 2.0,
            "camouflage share {quiet_share:.4} vs strike {heavy_share:.4}"
        );
    }

    #[test]
    fn strategic_pipeline_is_deterministic() {
        let run = || {
            let mut sys = strategic_system(73, MintScheme::SingleHash);
            format!("{:#?}", sys.run_epoch())
        };
        assert_eq!(run(), run());
    }
}
