//! The complete tiny-groups system: §II + §III + §IV composed.
//!
//! One [`FullSystem::run_epoch`] call performs the paper's whole
//! per-epoch pipeline:
//!
//! 1. **strings** — the Appendix VIII protocol runs over the current
//!    operational group graph; the agreed minimum becomes the next epoch
//!    string `r_i` (every good ID can verify any ID signed by a string
//!    in its solution set),
//! 2. **minting** — participants grind puzzles against `r_i`
//!    (`g(σ ⊕ r_i) ≤ τ`, ID = `f(g(σ ⊕ r_i))`); the adversary's pooled
//!    compute yields its `≈ βn` u.a.r. IDs (Lemma 11),
//! 3. **dynamics** — the §III epoch advance: churn, dual-search
//!    construction of the next two group graphs through the current
//!    ones, robustness measurement, swap.
//!
//! This is the type a downstream system would embed; the examples and
//! integration tests drive it end to end.

use crate::miner::MintingSim;
use crate::puzzle::PuzzleParams;
use crate::strings::{run_string_protocol, StringAdversary, StringOutcome, StringParams};
use rand::rngs::StdRng;
use tg_core::dynamic::{
    AdversaryView, BuildMode, DynamicSystem, EpochIds, EpochReport, IdentityProvider,
};
use tg_core::Params;
use tg_overlay::GraphKind;
use tg_sim::stream_rng;

/// A provider that hands the dynamic layer a pre-minted ID set.
struct PreMinted {
    ids: Option<EpochIds>,
}

impl IdentityProvider for PreMinted {
    fn ids_for_epoch(
        &mut self,
        _epoch: u64,
        _view: &AdversaryView<'_>,
        _rng: &mut StdRng,
    ) -> EpochIds {
        self.ids.take().expect("one epoch's IDs staged per advance")
    }
}

/// Everything one epoch produced.
#[derive(Clone, Debug)]
pub struct FullEpochReport {
    /// Epoch index the new graphs serve.
    pub epoch: u64,
    /// String-protocol measurements (Lemma 12).
    pub strings: StringOutcome,
    /// The epoch string agreed for minting.
    pub epoch_string: u64,
    /// Fraction of good giant-component pairs able to verify each
    /// other's signing strings (1.0 when `strings.agreement`).
    pub verification_coverage: f64,
    /// Good IDs minted for the next epoch.
    pub minted_good: usize,
    /// Adversarial IDs minted (Lemma 11's `≈ βn`).
    pub minted_bad: usize,
    /// Good participants who missed the minting window (realistic mode).
    pub good_misses: usize,
    /// The §III dynamic-epoch report.
    pub dynamics: EpochReport,
}

/// The composed system.
pub struct FullSystem {
    /// The §III dynamic layer (owns the operational group graphs).
    pub dynamics: DynamicSystem,
    /// Puzzle difficulty/rate parameters.
    pub puzzle: PuzzleParams,
    /// String-protocol parameters.
    pub string_params: StringParams,
    /// String-release adversary applied each epoch.
    pub string_adversary: StringAdversary,
    /// Good participants per epoch.
    pub n_good: usize,
    /// Adversary compute in units (`≈ βn`).
    pub adversary_units: f64,
    /// Idealized good minting (paper assumption) vs realistic misses.
    pub idealized_good: bool,
    epoch_string: u64,
    master_seed: u64,
}

impl FullSystem {
    /// Boot the system: initial graphs from a first minting window
    /// against a genesis string.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: Params,
        kind: GraphKind,
        puzzle: PuzzleParams,
        string_params: StringParams,
        n_good: usize,
        adversary_units: f64,
        idealized_good: bool,
        master_seed: u64,
    ) -> Self {
        let genesis = 0xD00D_F00D_0000_0001u64;
        let sim = MintingSim { params: puzzle, n_good, adversary_units, idealized_good };
        let mut rng = stream_rng(master_seed, "full-init-mint", 0);
        let minted = sim.run_window(&mut rng);
        let mut provider =
            PreMinted { ids: Some(EpochIds { good: minted.good_ids, bad: minted.bad_ids }) };
        let dynamics =
            DynamicSystem::new(params, kind, BuildMode::DualGraph, &mut provider, master_seed);
        FullSystem {
            dynamics,
            puzzle,
            string_params,
            string_adversary: StringAdversary::None,
            n_good,
            adversary_units,
            idealized_good,
            epoch_string: genesis,
            master_seed,
        }
    }

    /// The current epoch string.
    pub fn epoch_string(&self) -> u64 {
        self.epoch_string
    }

    /// Run one full epoch: strings → minting → dynamics.
    pub fn run_epoch(&mut self) -> FullEpochReport {
        let epoch = self.dynamics.epoch;

        // 1. Agree on the next epoch string over the operational graph.
        let mut srng = stream_rng(self.master_seed, "full-strings", epoch);
        let strings = run_string_protocol(
            &self.dynamics.graphs[0],
            &self.string_params,
            self.string_adversary,
            &mut srng,
        );
        let pairs = (strings.giant_size as u64).pow(2);
        let verification_coverage =
            if pairs == 0 { 0.0 } else { 1.0 - strings.missing_pairs as f64 / pairs as f64 };
        // Fold the agreed minimum into the epoch string (a fresh string
        // per epoch is what defeats pre-computation, §IV-B).
        let next_string = strings
            .global_min_key
            .map(|k| k ^ self.epoch_string.rotate_left(17) ^ epoch)
            .unwrap_or_else(|| self.epoch_string.wrapping_mul(0x9e3779b97f4a7c15) ^ epoch);

        // 2. Mint against the fresh string.
        let sim = MintingSim {
            params: self.puzzle,
            n_good: self.n_good,
            adversary_units: self.adversary_units,
            idealized_good: self.idealized_good,
        };
        let mut mrng = stream_rng(self.master_seed ^ next_string, "full-mint", epoch);
        let minted = sim.run_window(&mut mrng);
        let (minted_good, minted_bad, good_misses) =
            (minted.good_ids.len(), minted.bad_ids.len(), minted.good_misses);

        // 3. Advance the dynamic layer on the minted population.
        let mut provider =
            PreMinted { ids: Some(EpochIds { good: minted.good_ids, bad: minted.bad_ids }) };
        let dynamics = self.dynamics.advance_epoch(&mut provider);

        self.epoch_string = next_string;
        FullEpochReport {
            epoch: dynamics.epoch,
            strings,
            epoch_string: next_string,
            verification_coverage,
            minted_good,
            minted_bad,
            good_misses,
            dynamics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u64) -> FullSystem {
        let mut params = Params::paper_defaults();
        params.churn_rate = 0.15;
        params.attack_requests_per_id = 1;
        let mut sys = FullSystem::new(
            params,
            GraphKind::Chord,
            PuzzleParams::calibrated(16, 2048),
            StringParams::default(),
            700,
            35.0, // β = 5%
            true,
            seed,
        );
        sys.dynamics.searches_per_epoch = 200;
        sys
    }

    #[test]
    fn full_pipeline_stays_robust_over_epochs() {
        let mut sys = system(41);
        let mut last_string = sys.epoch_string();
        for _ in 0..4 {
            let r = sys.run_epoch();
            assert!(r.strings.agreement, "epoch {}: string disagreement", r.epoch);
            assert_eq!(r.verification_coverage, 1.0);
            assert_ne!(r.epoch_string, last_string, "epoch strings must refresh");
            last_string = r.epoch_string;
            let bad_ratio = r.minted_bad as f64 / 35.0;
            assert!((0.5..1.6).contains(&bad_ratio), "minted_bad {}", r.minted_bad);
            assert!(
                r.dynamics.search_success_dual > 0.9,
                "epoch {}: dual success {:.3}",
                r.epoch,
                r.dynamics.search_success_dual
            );
        }
    }

    #[test]
    fn full_pipeline_with_string_adversary() {
        let mut sys = system(43);
        sys.string_adversary =
            crate::strings::StringAdversary::ForcedRecords { strings: 4, release_frac: 0.49 };
        for _ in 0..3 {
            let r = sys.run_epoch();
            assert!(r.strings.agreement, "epoch {}: forced records broke agreement", r.epoch);
            assert!(r.dynamics.search_success_dual > 0.9);
        }
    }

    #[test]
    fn realistic_minting_shrinks_population_but_survives() {
        let mut sys = system(47);
        sys.idealized_good = false;
        let r = sys.run_epoch();
        // ≈ 1/e of good participants miss the window; the system keeps
        // running on the (1 − 1/e) that minted.
        assert!(r.good_misses > 0);
        let frac = r.minted_good as f64 / 700.0;
        assert!((0.55..0.75).contains(&frac), "minted fraction {frac:.3}");
        assert!(r.dynamics.search_success_dual > 0.85);
    }

    #[test]
    fn deterministic() {
        let mut a = system(53);
        let mut b = system(53);
        let ra = a.run_epoch();
        let rb = b.run_epoch();
        assert_eq!(ra.epoch_string, rb.epoch_string);
        assert_eq!(ra.minted_bad, rb.minted_bad);
        assert_eq!(ra.dynamics.frac_red, rb.dynamics.frac_red);
    }
}
