//! # tiny-groups
//!
//! Facade crate for the `tiny-groups` workspace: a reproduction of
//! *Tiny Groups Tackle Byzantine Adversaries* (Jaiyeola, Patron, Saia,
//! Young, Zhou — IPDPS 2018).
//!
//! Re-exports the subsystem crates under stable names. See the workspace
//! `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and experiment index.

pub use tg_ba as ba;
pub use tg_baselines as baselines;
pub use tg_core as core;
pub use tg_crypto as crypto;
pub use tg_idspace as idspace;
pub use tg_overlay as overlay;
pub use tg_pow as pow;
pub use tg_sim as sim;
pub use tg_verify as verify;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use tg_idspace::{Id, RingDistance, RingInterval, SortedRing};
}
