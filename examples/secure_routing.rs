//! Message-level secure routing vs the no-groups strawman.
//!
//! ```text
//! cargo run --release --example secure_routing
//! ```
//!
//! Carries an actual payload hop by hop — every member of each group on
//! the route claims a value to every member of the next group, receivers
//! majority-filter, Byzantine members equivocate — and contrasts the
//! delivery rate with single-ID routing over the same population
//! (§I-A's "is this trivial?" argument).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::ba::AdversaryMode;
use tiny_groups::baselines::measure_single_id_routing;
use tiny_groups::core::routing::secure_route_verified;
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::sim::Metrics;

fn main() {
    let seed = 11;
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = Population::uniform(1900, 100, &mut rng); // β = 5%
    let params = Params::paper_defaults();
    let gg =
        build_initial_graph(pop.clone(), GraphKind::Chord, OracleFamily::new(seed).h1, &params);

    let payload = 0xCAFEBABEu64;
    let trials = 400;
    let mut delivered = 0usize;
    let mut sound = 0usize;
    let mut metrics = Metrics::new();
    for _ in 0..trials {
        let from = rng.gen_range(0..gg.len());
        let key = Id(rng.gen());
        let out = secure_route_verified(
            &gg,
            from,
            key,
            payload,
            AdversaryMode::Equivocate { seed: 5 },
            &mut metrics,
        );
        if out.correct {
            delivered += 1;
        }
        if out.abstraction_sound {
            sound += 1;
        }
    }
    println!(
        "tiny groups (|G| ≈ {:.0}), message-level all-to-all + majority filtering:",
        gg.mean_group_size()
    );
    println!(
        "  payload delivered intact: {}/{trials} ({:.1}%)",
        delivered,
        100.0 * delivered as f64 / trials as f64
    );
    println!("  group-level abstraction sound in {sound}/{trials} runs");
    println!("  messages per search: {:.0}", metrics.routing_msgs as f64 / trials as f64);

    // The strawman: same population, same topology, no groups.
    let graph = GraphKind::Chord.build(pop.ring().clone());
    let single = measure_single_id_routing(&pop, graph.as_ref(), trials, &mut rng);
    println!("\nsingle-ID routing over the same population:");
    println!(
        "  success: {:.1}% (predicted (1−β)^D = {:.1}%)",
        100.0 * single.success_rate,
        100.0 * single.predicted
    );
    println!("  — cheap ({:.1} messages ≈ hops) but broken; groups buy correctness with |G|² messages per hop.", single.mean_route_len);
}
