//! A decentralized storage service riding the dynamic construction.
//!
//! ```text
//! cargo run --release --example churn_storage
//! ```
//!
//! The §I-A motivation made concrete with the [`SecureDht`] API: store
//! key→value items in the group graph (each item replicated across the
//! members of its key's responsible group), re-replicate as groups are
//! rebuilt every epoch, and read back with majority filtering while
//! Byzantine replicas lie. ε-robustness = all but an `O(1/poly log n)`
//! fraction of the items stays both *reachable* and *correct*, every
//! epoch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::ba::AdversaryMode;
use tiny_groups::core::dht::GetOutcome;
use tiny_groups::core::{GroupGraphView, ScenarioSpec, SecureDht};
use tiny_groups::idspace::Id;
use tiny_groups::sim::Metrics;

fn main() {
    let seed = 7;
    let n_good = 1500;
    let n_bad = 79; // β ≈ 5%

    // The whole system as one declarative scenario (honest identities,
    // no PoW, the paper's defaults otherwise) — `build()` hands back an
    // epoch driver and the storage service never sees the constructors.
    let spec = ScenarioSpec::new(n_good, seed).budget(n_bad).churn(0.15).attack_requests(2);
    let mut sys = spec.build().expect("honest no-PoW scenario");

    // The "database": 500 items addressed by u.a.r. keys. Each epoch the
    // group graphs are rebuilt from scratch, so the service re-replicates
    // every item into its (new) responsible group, then audits reads —
    // with Byzantine replicas colluding on a forged value.
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<(Id, u64)> = (0..500).map(|i| (Id(rng.gen()), 10_000 + i)).collect();

    println!(
        "epoch  red%   stored   correct reads   forged reads   (n = {}, β ≈ 5%, full turnover/epoch)",
        n_good + n_bad
    );
    for _ in 0..8 {
        let epoch = sys.step().epoch;
        let frac_red = sys.observation().frac_red[0];
        let gg = sys.graphs().side(0);
        let mut dht = SecureDht::new(&gg, AdversaryMode::Collude { value: 0xBAD });
        let mut metrics = Metrics::new();
        let mut stored = 0usize;
        for &(key, value) in &items {
            let from = rng.gen_range(0..gg.len());
            if dht.put(from, key, value, &mut metrics) {
                stored += 1;
            }
        }
        let mut correct = 0usize;
        let mut forged = 0usize;
        for &(key, value) in &items {
            let from = rng.gen_range(0..gg.len());
            match dht.get(from, key, &mut metrics) {
                GetOutcome::Value(v) if v == value => correct += 1,
                GetOutcome::Value(_) => forged += 1,
                _ => {}
            }
        }
        println!(
            "{:>5}  {:>4.2}  {:>5.1}%  {:>12.1}%  {:>12}",
            epoch,
            100.0 * frac_red,
            100.0 * stored as f64 / items.len() as f64,
            100.0 * correct as f64 / items.len() as f64,
            forged,
        );
    }
    println!("\nEvery replica set is a Θ(log log n)-size group rebuilt each epoch;");
    println!("majority filtering keeps forged reads at zero while the adversary");
    println!("controls every Byzantine replica's answers.");
}
