//! The complete paper, one epoch at a time.
//!
//! ```text
//! cargo run --release --example full_system
//! ```
//!
//! Drives [`FullSystem`]: every epoch the network agrees on a fresh
//! random string (Appendix VIII), all participants mint new identities
//! against it (§IV), and the two group graphs rebuild themselves through
//! the old pair (§III) — with a string-release adversary, realistic
//! honest-miner misses, and churn, all at once.

use tiny_groups::core::Params;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{FullSystem, PuzzleParams, StringAdversary, StringParams};

fn main() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.15;
    params.attack_requests_per_id = 2;

    let mut sys = FullSystem::new(
        params,
        GraphKind::Chord,
        PuzzleParams::calibrated(16, 2048),
        StringParams::default(),
        1200, // good participants
        60.0, // adversary compute units (β = 5%)
        true, // idealized good minting (set false for 1/e misses)
        2026,
    );
    sys.string_adversary = StringAdversary::ForcedRecords { strings: 4, release_frac: 0.49 };
    sys.dynamics.set_searches_per_epoch(400);

    println!("epoch  string      agree  minted(good/bad)  red%   search(dual)");
    for _ in 0..6 {
        let r = sys.run_epoch();
        println!(
            "{:>5}  {:016x}  {:>5}  {:>7}/{:<6} {:>5.2}  {:>10.1}%",
            r.epoch,
            r.epoch_string,
            r.strings.agreement,
            r.minted_good,
            r.minted_bad,
            100.0 * r.dynamics.frac_red[0],
            100.0 * r.dynamics.search_success_dual,
        );
    }
    println!("\nEach line is one epoch of the full pipeline: string agreement under a");
    println!("worst-case delayed release, fresh PoW identities (adversary held to ≈ βn,");
    println!("all u.a.r.), and a complete rebuild of both group graphs through dual");
    println!("searches — with Θ(log log n) groups throughout.");
}
