//! Quickstart: build a tiny-groups system, route securely, measure
//! robustness.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 2 000-ID system at `β = 5%` with `Θ(log log n)` groups over
//! Chord, runs a batch of searches with full message accounting, and
//! prints the Theorem-3 quantities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::core::{build_initial_graph, measure_robustness, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;

fn main() {
    let seed = 42;
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. A population: 1 900 good IDs and 100 Byzantine ones (β = 5%),
    //    all u.a.r. on the unit ring — the placement §IV's proof-of-work
    //    enforces (see examples/pow_identity.rs for the minting side).
    let pop = Population::uniform(1900, 100, &mut rng);
    let n = pop.len();

    // 2. The group graph: one Θ(log log n)-size group per ID over a
    //    Chord input graph, membership assigned by the random oracle.
    let params = Params::paper_defaults();
    let fam = OracleFamily::new(seed);
    let gg = build_initial_graph(pop, GraphKind::Chord, fam.h1, &params);
    println!("n = {n} IDs, β = 5%");
    println!(
        "group size: {:.1} members (ln ln n = {:.2})",
        gg.mean_group_size(),
        (n as f64).ln().ln()
    );

    // 3. Robustness: sample searches from random groups to random keys.
    let rep = measure_robustness(&gg, &params, 2000, &mut rng);
    println!("groups with good majority: {:.2}%", 100.0 * rep.frac_good_majority);
    println!("red (bad ∪ confused) groups: {:.2}%", 100.0 * rep.frac_red);
    println!("search success rate: {:.2}%", 100.0 * rep.search_success);
    println!("mean groups per search: {:.1}", rep.mean_hops);
    println!("mean messages per search: {:.0} (all-to-all hops)", rep.mean_msgs);

    // 4. A single concrete search, end to end.
    let from = rng.gen_range(0..gg.len());
    let key = Id(rng.gen());
    let mut metrics = tiny_groups::sim::Metrics::new();
    let outcome = tiny_groups::core::search_path(&gg, from, key, &mut metrics);
    println!("\nsearch from group {from} for key {key}: {:?}", outcome);
}
