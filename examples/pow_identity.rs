//! The §IV identity pipeline: puzzles, expiry, global random strings.
//!
//! ```text
//! cargo run --release --example pow_identity
//! ```
//!
//! Walks the full proof-of-work story with real SHA-256 hashing:
//! minting an ID, verifying it, watching it expire when the epoch string
//! refreshes, the two-hash vs single-hash bias, and the string
//! propagation protocol under a delayed-release adversary.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::puzzle::{attempt, attempt_single_hash, verify};
use tiny_groups::pow::{run_string_protocol, PuzzleParams, StringAdversary, StringParams};

fn main() {
    let fam = OracleFamily::new(2024);
    // An easy puzzle so the demo mints quickly; production difficulty is
    // calibrated per PuzzleParams::calibrated (one solution per unit per
    // half-epoch).
    let params = PuzzleParams { tau: Id::from_f64(0.001), attempts_per_step: 1, t_epoch: 2 };
    let r0 = 0xA5A5_0001u64; // this epoch's globally-known string
    let r1 = 0xA5A5_0002u64; // next epoch's string

    // --- Minting: grind σ until g(σ ⊕ r) ≤ τ ---
    let mut tries = 0u64;
    let sol = loop {
        tries += 1;
        if let Some(s) = attempt(&fam, &params, (tries, tries ^ 0xF00D), r0) {
            break s;
        }
    };
    println!("minted ID {} after {tries} attempts (τ = 0.001)", sol.id);
    println!("verifies under current string r0: {}", verify(&fam, &params, &sol, r0));
    println!("verifies after string refresh r1: {} (expired)", verify(&fam, &params, &sol, r1));

    // --- Why two hashes (f ∘ g): chosen-σ bias ---
    let mut one_hash_low = 0usize;
    let mut two_hash_low = 0usize;
    let mut one_total = 0usize;
    let mut two_total = 0usize;
    for s in 0..200_000u64 {
        // Adversary confines σ to tiny values, aiming IDs at [0, ~0).
        if let Some(id) = attempt_single_hash(&fam, &params, s) {
            one_total += 1;
            if id.as_f64() < 0.5 {
                one_hash_low += 1;
            }
        }
        if let Some(sol) = attempt(&fam, &params, (s, 0), r0) {
            two_total += 1;
            if sol.id.as_f64() < 0.5 {
                two_hash_low += 1;
            }
        }
    }
    println!("\nchosen-σ attack, fraction of minted IDs in [0, 0.5):");
    println!(
        "  single-hash scheme: {:>5.1}%  ({} IDs — all exactly where the adversary aimed)",
        100.0 * one_hash_low as f64 / one_total.max(1) as f64,
        one_total
    );
    println!(
        "  two-hash (paper):   {:>5.1}%  ({} IDs — uniform, Lemma 11)",
        100.0 * two_hash_low as f64 / two_total.max(1) as f64,
        two_total
    );

    // --- Global random strings (Appendix VIII) ---
    let mut rng = StdRng::seed_from_u64(99);
    let pop = Population::uniform(950, 50, &mut rng);
    let gg = build_initial_graph(pop, GraphKind::Chord, fam.h1, &Params::paper_defaults());
    let sp = StringParams::default();
    let adv = StringAdversary::DelayedRelease { strings: 6, release_frac: 0.49, units: 50.0 };
    let out = run_string_protocol(&gg, &sp, adv, &mut rng);
    println!("\nstring propagation with delayed release at the Phase-2 boundary:");
    println!("  giant component: {} good IDs", out.giant_size);
    println!("  agreement (every si* in every R_u): {}", out.agreement);
    println!(
        "  solution set size: mean {:.1}, max {:.0} (d0·ln n = {:.0})",
        out.solution_set_sizes.mean,
        out.solution_set_sizes.max,
        sp.d0 * (gg.len() as f64).ln()
    );
    println!(
        "  forwards/node: {:.1}, messages: {}",
        out.forwards as f64 / gg.len() as f64,
        out.messages
    );
}
