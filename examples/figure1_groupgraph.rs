//! Regenerate Figure 1: the input graph and group graph panels.
//!
//! ```text
//! cargo run --release --example figure1_groupgraph > /tmp/fig1.txt
//! dot -Tpng results/figure1_h.dot -o figure1_h.png   # if graphviz is installed
//! ```
//!
//! Prints both DOT panels (input graph `H` with a highlighted search,
//! group graph `G` with red groups marked "B" and dashed all-to-all
//! links) and a small textual legend, mirroring the paper's Figure 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::core::render::render_figure1;
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;

fn main() {
    let seed = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = Population::uniform(12, 2, &mut rng);
    let gg = build_initial_graph(
        pop,
        GraphKind::Chord,
        OracleFamily::new(seed).h1,
        &Params::paper_defaults(),
    );

    // A search from the first blue good leader, like the paper's w → y.
    let from = (0..gg.len())
        .find(|&i| !gg.leaders.is_bad(i) && !gg.is_red(i))
        .expect("some blue group exists at n=14, β≈14%");
    let key = Id(rng.gen());
    let (h_dot, g_dot) = render_figure1(&gg, from, key);

    println!("// ===== Figure 1, left panel: input graph H =====");
    println!("{h_dot}");
    println!("// ===== Figure 1, right panel: group graph G =====");
    println!("// (red groups carry the paper's \"B\" marker; dashed edges are");
    println!("//  all-to-all links between good members of neighboring groups)");
    println!("{g_dot}");

    let red = (0..gg.len()).filter(|&i| gg.is_red(i)).count();
    eprintln!("n = {} groups, {} red; search initiated at group {from}", gg.len(), red);
}
