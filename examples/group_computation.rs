//! Groups as reliable processors: in-group Byzantine agreement.
//!
//! ```text
//! cargo run --release --example group_computation
//! ```
//!
//! The paper's second pillar (§I): every group executes tasks via
//! Byzantine agreement, so a good-majority group acts like one reliable
//! machine. This example takes real groups out of a built group graph
//! and runs Phase King, EIG, and the commit-reveal coin inside them,
//! with the group's actual Byzantine members misbehaving — and shows the
//! Corollary-1 message contrast against `Θ(log n)`-size groups.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_groups::ba::{commit_reveal_coin, eig_agreement, phase_king, AdversaryMode};
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::overlay::GraphKind;

fn group_masks(gg: &tiny_groups::core::GroupGraph, gi: usize) -> (Vec<u64>, Vec<bool>) {
    let g = &gg.groups[gi];
    let bad: Vec<bool> = g.members.iter().map(|&m| gg.pool.is_bad(m as usize)).collect();
    // Task: agree on a checkpoint value; good members propose 7.
    let inputs: Vec<u64> = bad.iter().map(|&b| if b { 999 } else { 7 }).collect();
    (inputs, bad)
}

fn main() {
    let seed = 5;
    let mut rng = StdRng::seed_from_u64(seed);
    let pop = Population::uniform(1900, 100, &mut rng);
    let fam = OracleFamily::new(seed);

    let tiny =
        build_initial_graph(pop.clone(), GraphKind::Chord, fam.h1, &Params::paper_defaults());
    let classic = build_initial_graph(
        pop,
        GraphKind::Chord,
        fam.h1,
        &Params::paper_defaults().with_classic_groups(1.5),
    );

    for (label, gg) in [("tiny Θ(log log n)", &tiny), ("classic Θ(log n)", &classic)] {
        // Pick a group with at least one Byzantine member.
        let gi = (0..gg.len())
            .find(|&i| {
                gg.groups[i].bad_count(&gg.pool) >= 1 && gg.groups[i].has_good_majority(&gg.pool)
            })
            .expect("some infiltrated-but-good group exists");
        let (inputs, bad) = group_masks(gg, gi);
        let m = inputs.len();
        let t = bad.iter().filter(|&&b| b).count();
        println!("== {label} groups: G_{gi} has {m} members, {t} Byzantine ==");

        let pk = phase_king(&inputs, &bad, AdversaryMode::Equivocate { seed: 1 });
        println!(
            "  Phase King : decided {:?} in {} msgs, {} rounds",
            pk.agreed_value(),
            pk.msgs,
            pk.rounds
        );

        if m <= 12 && t <= 2 {
            let eig = eig_agreement(&inputs, &bad, AdversaryMode::Collude { value: 999 });
            println!(
                "  EIG        : decided {:?} in {} msgs, {} rounds",
                eig.agreed_value(),
                eig.msgs,
                eig.rounds
            );
        } else {
            println!(
                "  EIG        : skipped (exponential relay size at |G| = {m} — the log n problem!)"
            );
        }

        let mut coin_rng = StdRng::seed_from_u64(2);
        let coin = commit_reveal_coin(m, &bad, AdversaryMode::Collude { value: 1 }, &mut coin_rng);
        println!(
            "  Shared coin: value {:#018x}, {} withheld reveals, {} msgs",
            coin.coin, coin.withheld, coin.msgs
        );
        println!();
    }
    println!("The per-operation message gap above is Corollary 1: group");
    println!("communication scales with |G|², so shrinking |G| from Θ(log n)");
    println!("to Θ(log log n) cuts every group task's cost quadratically.");
}
