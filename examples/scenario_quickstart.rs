//! The unified scenario API in one screen.
//!
//! ```text
//! cargo run --release --example scenario_quickstart
//! ```
//!
//! One declarative [`ScenarioSpec`] describes a complete adversarial
//! deployment — topology, churn, defense, placement strategy, β, seed —
//! and `tg_pow::scenario::build` turns it into an epoch driver without
//! the caller ever naming a concrete system type. The same spec
//! round-trips through a stable text label, so the scenario *is* the
//! string: print it, store it, parse it back, and the parsed copy
//! replays the identical simulation.

use tiny_groups::core::{Defense, MintScheme, ScenarioSpec, StrategySpec};

fn main() {
    // A gap-filling adversary with a 10% budget, first against the bare
    // §III dynamic layer, then against the full §IV protocol.
    let undefended = ScenarioSpec::new(800, 42)
        .beta(0.10)
        .churn(0.1)
        .attack_requests(0)
        .strategy(StrategySpec::GapFilling)
        .searches(300);
    let defended = undefended
        .clone()
        .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true });

    println!("scenario label:\n  {}\n", undefended.label());
    let reparsed = ScenarioSpec::parse(&undefended.label()).expect("labels round-trip");
    assert_eq!(reparsed, undefended, "the label is the scenario");

    println!("defense      epoch  bad-IDs  key-share  captured  search(dual)");
    for spec in [undefended, defended] {
        let mut driver = tg_pow::scenario::build(&spec).expect("buildable scenario");
        for _ in 0..3 {
            let o = driver.step();
            println!(
                "{:<11}  {:>5}  {:>7}  {:>8.4}  {:>8}  {:>11.1}%",
                spec.defense.label(),
                o.epoch,
                o.bad_ids,
                o.bad_share,
                o.captured_groups,
                100.0 * o.search_success_dual,
            );
        }
    }
    println!("\nSame adversary, same seed discipline, one API: the `f∘g` rows mint");
    println!("through the real epoch-string protocol and the placement dies at the");
    println!("two-hash composition; the no-PoW rows show what it buys.");
}
