//! Cross-crate property tests: invariants that span subsystem
//! boundaries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_groups::ba::{majority_filter, phase_king, AdversaryMode};
use tiny_groups::core::{build_initial_graph, search_path, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::{Id, SortedRing};
use tiny_groups::overlay::GraphKind;
use tiny_groups::sim::Metrics;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every topology resolves every key to the ring successor, from any
    /// start, on arbitrary rings.
    #[test]
    fn routing_always_resolves_successor(
        ids in prop::collection::btree_set(any::<u64>(), 3..120),
        from_sel in any::<u16>(),
        key in any::<u64>(),
    ) {
        let ring = SortedRing::new(ids.into_iter().map(Id).collect());
        let from = ring.at(from_sel as usize % ring.len());
        let key = Id(key);
        for kind in GraphKind::ALL {
            let g = kind.build(ring.clone());
            let route = g.route(from, key);
            prop_assert_eq!(route.hops[0], from);
            prop_assert_eq!(route.resolver(), ring.successor(key), "{}", kind.name());
            prop_assert!(route.len() <= g.route_len_bound());
        }
    }

    /// The oracle family is a function: equal inputs, equal outputs —
    /// and group building over it is a pure function of the population.
    #[test]
    fn group_build_is_pure(seed in any::<u64>(), n_good in 24usize..120, n_bad in 0usize..12) {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::uniform(n_good, n_bad, &mut rng);
            build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(seed).h1, &Params::paper_defaults())
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.frac_red(), b.frac_red());
        prop_assert_eq!(a.groups, b.groups);
    }

    /// With zero Byzantine IDs, no search ever fails, whatever the seed,
    /// size, or topology.
    #[test]
    fn no_adversary_no_failures(
        seed in any::<u64>(),
        n in 16usize..200,
        kind_sel in 0usize..4,
    ) {
        let kind = GraphKind::ALL[kind_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(n, 0, &mut rng);
        let gg = build_initial_graph(pop, kind, OracleFamily::new(seed).h1, &Params::paper_defaults());
        let mut m = Metrics::new();
        use rand::Rng;
        for _ in 0..16 {
            let from = rng.gen_range(0..gg.len());
            let out = search_path(&gg, from, Id(rng.gen()), &mut m);
            prop_assert!(out.is_success());
        }
        prop_assert_eq!(m.failed_searches, 0);
    }

    /// Majority filtering with a good-majority sender set is immune to
    /// any combination of omissions and lies.
    #[test]
    fn majority_filter_immunity(
        truth in any::<u64>(),
        n_good in 3usize..20,
        lies in prop::collection::vec(prop::option::of(any::<u64>()), 0..10),
    ) {
        prop_assume!(lies.len() < n_good);
        let mut claims: Vec<Option<u64>> = vec![Some(truth); n_good];
        claims.extend(lies.iter().copied());
        let (winner, strict) = majority_filter(&claims);
        prop_assert_eq!(winner, Some(truth));
        prop_assert!(strict);
    }

    /// Phase King agreement and validity hold for random small groups
    /// with t < n/4 equivocating traitors.
    #[test]
    fn phase_king_agreement_random_groups(
        n in 5usize..14,
        seed in any::<u64>(),
        unanimous in any::<bool>(),
    ) {
        let t = (n - 1) / 4;
        let bad: Vec<bool> = (0..n).map(|i| i < t).collect();
        let inputs: Vec<u64> = (0..n as u64)
            .map(|i| if unanimous { 5 } else { i % 3 })
            .collect();
        let out = phase_king(&inputs, &bad, AdversaryMode::Equivocate { seed });
        let agreed = out.agreed_value();
        prop_assert!(agreed.is_some(), "agreement must hold (n={n}, t={t})");
        if unanimous {
            prop_assert_eq!(agreed, Some(5), "validity must hold");
        }
    }
}
