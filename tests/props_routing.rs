//! Property tests for the routing invariants the robustness measurements
//! stand on, across arbitrary seeds, graph kinds, and red patterns.
//!
//! * §II-B search-path semantics: a search **fails iff** its group path
//!   meets a red group — and it fails *at the first* red group on the
//!   topology route, never before, never after.
//! * Dual-graph availability: per query, the dual search succeeds iff
//!   either side's search succeeds, so dual success is never below the
//!   better single side (pointwise, hence also in aggregate).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::core::routing::{dual_search, search_path, SearchOutcome};
use tiny_groups::core::{build_initial_graph, GroupGraph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::sim::Metrics;

/// A group graph with adversarial membership *and* an arbitrary extra
/// confusion pattern (every confusion bit set makes that group red
/// regardless of its members).
fn arbitrary_graph(
    kind: GraphKind,
    seed: u64,
    confusion_rate: f64,
    oracle_tag: usize,
) -> GroupGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_good = rng.gen_range(60..200);
    let n_bad = rng.gen_range(0..n_good / 3);
    let pop = Population::uniform(n_good, n_bad, &mut rng);
    let fam = OracleFamily::new(seed ^ 0x5EED);
    let oracle = if oracle_tag == 0 { fam.h1 } else { fam.h2 };
    let mut gg = build_initial_graph(pop, kind, oracle, &Params::paper_defaults());
    for i in 0..gg.len() {
        if rng.gen::<f64>() < confusion_rate {
            gg.confused[i] = true;
        }
    }
    gg.recolor();
    gg
}

/// Index of the first red group on the topology route, if any.
fn first_red_on_route(gg: &GroupGraph, from: usize, key: Id) -> Option<usize> {
    let from_id = gg.leaders.ring().at(from);
    let route = gg.topology.route(from_id, key);
    route.hops.iter().position(|&h| {
        let i = gg.leaders.ring().index_of(h).expect("route hops are leader IDs");
        gg.is_red(i)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §II-B, both directions: success ⟺ an all-blue route, and a
    /// failure is located exactly at the first red group.
    #[test]
    fn search_fails_iff_path_meets_red_group(
        seed in any::<u64>(),
        confusion in 0.0f64..0.4,
        from_sel in any::<u16>(),
        key in any::<u64>(),
    ) {
        for kind in GraphKind::ALL {
            let gg = arbitrary_graph(kind, seed, confusion, 0);
            let from = from_sel as usize % gg.len();
            let mut m = Metrics::new();
            let out = search_path(&gg, from, Id(key), &mut m);
            match (out, first_red_on_route(&gg, from, Id(key))) {
                (SearchOutcome::Success { .. }, first_red) => {
                    prop_assert_eq!(first_red, None, "{}: success with a red group on the path", kind.name());
                }
                (SearchOutcome::Fail { failed_at, hops, .. }, first_red) => {
                    prop_assert_eq!(Some(failed_at), first_red, "{}: failure not at the first red group", kind.name());
                    prop_assert_eq!(hops, failed_at + 1, "{}: truncation length mismatch", kind.name());
                }
            }
        }
    }

    /// Dual-graph search success is never below the better single side —
    /// pointwise: dual succeeds exactly when either side does.
    #[test]
    fn dual_search_never_below_better_single_side(
        seed in any::<u64>(),
        confusion in 0.0f64..0.4,
        from_sel in any::<u16>(),
        key in any::<u64>(),
    ) {
        for kind in GraphKind::ALL {
            let a = arbitrary_graph(kind, seed, confusion, 0);
            let b = arbitrary_graph(kind, seed, confusion / 2.0, 1);
            prop_assert_eq!(a.len(), b.len(), "same population on both sides");
            let from = from_sel as usize % a.len();
            let mut m = Metrics::new();
            let sa = search_path(&a, from, Id(key), &mut m).is_success();
            let sb = search_path(&b, from, Id(key), &mut m).is_success();
            let dual = dual_search([&a, &b], from, Id(key), &mut m);
            prop_assert_eq!(dual, sa || sb, "{}: dual must be the OR of the sides", kind.name());
            prop_assert!(dual as u8 >= sa.max(sb) as u8, "{}: dual below a single side", kind.name());
        }
    }
}
