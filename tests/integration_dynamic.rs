//! Cross-crate integration: the dynamic construction (§III) composed
//! with PoW identities (§IV) and adversarial placement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::core::dynamic::{
    AdversaryView, BuildMode, DynamicSystem, GapFilling, IdentityProvider, IntervalTargeting,
    StrategicProvider, Uniform, UniformProvider,
};
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{MintScheme, MintingSim, PowProvider, PuzzleParams, StrategicPowProvider};

fn stable_params() -> Params {
    let mut p = Params::paper_defaults();
    p.churn_rate = 0.15;
    p.attack_requests_per_id = 2;
    p
}

/// The paper's end state: §III dynamics running on §IV identities stay
/// ε-robust over epochs of full membership turnover.
#[test]
fn full_stack_pow_dynamics_stay_robust() {
    let mut provider = PowProvider {
        sim: MintingSim {
            params: PuzzleParams::calibrated(16, 2048),
            n_good: 800,
            adversary_units: 40.0,
            idealized_good: true,
        },
    };
    let mut sys = DynamicSystem::new(
        stable_params(),
        GraphKind::Chord,
        BuildMode::DualGraph,
        &mut provider,
        17,
    );
    sys.searches_per_epoch = 300;
    for _ in 0..5 {
        let r = sys.advance_epoch(&mut provider);
        assert!(
            r.search_success_dual > 0.9,
            "epoch {}: dual success {:.3}",
            r.epoch,
            r.search_success_dual
        );
        assert!(r.frac_red[0] < 0.05, "epoch {}: red {:.4}", r.epoch, r.frac_red[0]);
    }
}

/// Without PoW, a gap-filling adversary (choosing its ID values to claim
/// the widest good-ID gaps) recruits far more group members than one
/// forced to uniform placement — the §IV motivation, measured at the
/// membership level.
#[test]
fn gap_filling_placement_beats_uniform_placement() {
    let bad_member_fraction = |gap_filling: bool| -> f64 {
        let mut rng = StdRng::seed_from_u64(23);
        let view = AdversaryView::genesis(0);
        let ids = if gap_filling {
            StrategicProvider::new(1140, 60, GapFilling).ids_for_epoch(0, &view, &mut rng)
        } else {
            UniformProvider { n_good: 1140, n_bad: 60 }.ids_for_epoch(0, &view, &mut rng)
        };
        let pop = Population::new(ids.good, ids.bad);
        let gg =
            build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(23).h1, &stable_params());
        let mut bad = 0usize;
        let mut total = 0usize;
        for g in &gg.groups {
            bad += g.bad_count(&gg.pool);
            total += g.size(&gg.pool);
        }
        bad as f64 / total as f64
    };
    let uniform = bad_member_fraction(false);
    let gap = bad_member_fraction(true);
    // Theory: claiming the k widest gaps of n good IDs yields a share of
    // ≈ Σ_{j≤k} ln(n/j) / (2n) — about 1.8–2× the uniform β here.
    assert!(
        gap > 1.5 * uniform,
        "gap filling must amplify recruitment: {gap:.4} vs uniform {uniform:.4}"
    );
}

/// The censorship attack: clustering chosen IDs in a 1% interval makes
/// the adversary *own* that key region — searches for keys there resolve
/// to bad IDs almost surely, while uniform placement only ever corrupts
/// a β-fraction. PoW's u.a.r. guarantee (Lemma 11) is what forbids this.
#[test]
fn targeted_interval_censors_chosen_resources() {
    let owned_fraction = |targeted: bool| -> f64 {
        let mut rng = StdRng::seed_from_u64(29);
        let view = AdversaryView::genesis(0);
        let ids = if targeted {
            StrategicProvider::new(
                1140,
                60,
                IntervalTargeting { victim: Id::from_f64(0.41), width: 0.01 },
            )
            .ids_for_epoch(0, &view, &mut rng)
        } else {
            UniformProvider { n_good: 1140, n_bad: 60 }.ids_for_epoch(0, &view, &mut rng)
        };
        let pop = Population::new(ids.good, ids.bad);
        // Keys inside the attacked interval: who owns them?
        let mut bad_owned = 0usize;
        let probes = 500;
        for _ in 0..probes {
            let key = Id::from_f64(0.4 + rng.gen::<f64>() * 0.01);
            let owner = pop.ring().successor(key);
            let idx = pop.ring().index_of(owner).unwrap();
            if pop.is_bad(idx) {
                bad_owned += 1;
            }
        }
        bad_owned as f64 / probes as f64
    };
    let uniform = owned_fraction(false);
    let targeted = owned_fraction(true);
    assert!(uniform < 0.2, "uniform placement owns ≈β of any region: {uniform:.3}");
    assert!(targeted > 0.8, "targeted placement must own the chosen region: {targeted:.3}");
}

/// The same strategy object composes with both identity pipelines, and
/// the pipelines disagree exactly as §IV predicts: gap-filling pushed
/// through the paper's `f∘g` minting is indistinguishable from uniform
/// placement, while the no-PoW pipeline hands it its amplified share.
#[test]
fn strategies_compose_with_both_identity_pipelines() {
    let total_captured = |mut provider: Box<dyn IdentityProvider>| -> usize {
        let mut sys = DynamicSystem::new(
            stable_params(),
            GraphKind::Chord,
            BuildMode::DualGraph,
            provider.as_mut(),
            37,
        );
        sys.searches_per_epoch = 100;
        let mut captured = 0usize;
        for _ in 0..3 {
            sys.advance_epoch(provider.as_mut());
            captured += sys
                .graphs
                .iter()
                .map(|g| g.groups.iter().filter(|gr| !gr.has_good_majority(&g.pool)).count())
                .sum::<usize>();
        }
        captured
    };
    let no_pow = total_captured(Box::new(StrategicProvider::new(900, 60, GapFilling)));
    let fog = total_captured(Box::new(StrategicPowProvider::new(
        900,
        60.0,
        MintScheme::TwoHash,
        GapFilling,
    )));
    let uniform = total_captured(Box::new(StrategicProvider::new(900, 60, Uniform)));
    let uniform_pow = total_captured(Box::new(StrategicPowProvider::new(
        900,
        60.0,
        MintScheme::TwoHash,
        Uniform,
    )));
    assert!(
        no_pow > 3 * uniform,
        "no-PoW gap filling must capture far more groups: {no_pow} vs uniform {uniform}"
    );
    // Under f∘g the strategy is indistinguishable from uniform minting:
    // both sit at the small binomial-tail noise floor.
    assert!(
        fog <= uniform_pow + 10 && fog < no_pow / 5,
        "f∘g must collapse gap filling to the uniform level: \
         {fog} vs uniform-PoW {uniform_pow}, no-PoW {no_pow}"
    );
}

/// The two-graph construction is necessary: the single-graph ablation
/// ends with at least as many red groups over the same horizon.
#[test]
fn single_graph_ablation_never_beats_dual() {
    let final_red = |mode: BuildMode| -> f64 {
        let mut provider = UniformProvider { n_good: 760, n_bad: 40 };
        let mut sys =
            DynamicSystem::new(stable_params(), GraphKind::Chord, mode, &mut provider, 31);
        sys.searches_per_epoch = 150;
        let mut red = 0.0;
        for _ in 0..5 {
            red = sys.advance_epoch(&mut provider).frac_red[0];
        }
        red
    };
    let dual = final_red(BuildMode::DualGraph);
    let single = final_red(BuildMode::SingleGraph);
    assert!(single >= dual, "single {single:.4} vs dual {dual:.4}");
    assert!(dual < 0.05, "paper config must stay healthy: {dual:.4}");
}
