//! Kernel-equivalence suite: the arena/SoA epoch kernel and the legacy
//! per-group kernel are **observation-identical** — same spec, same
//! seed, same epoch-by-epoch `EpochObservation`, byte for byte — across
//! every defense arm and placement strategy the scenario API can
//! express.
//!
//! The legacy kernel is the conformance oracle: it predates the arena
//! and produced the committed golden corpus. These tests pin that
//! swapping `kernel=arena` into any spec changes wall clock and memory
//! layout, never results. (The corpus-level half of this statement —
//! committed seed-42 CSVs replaying byte-identically through the arena
//! kernel — lives in `crates/experiments/tests/golden_arena.rs`.)

use proptest::prelude::*;
use tiny_groups::core::runtime::RuntimeChoice;
use tiny_groups::core::scenario::{
    Defense, KernelChoice, MintScheme, ScenarioSpec, StrategySpec, StringMode,
};
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::scenario::build;

/// Step every kernel × runtime combination over the same spec and
/// require Debug-identical observations every epoch (the full report:
/// fractions, search rates, build stats, minting counters — everything
/// the systems can observe). The legacy synchronous driver is the
/// oracle; the arena kernel and the actor runtime over its (perfect by
/// default) transport must both reproduce it byte for byte.
fn assert_kernels_agree(spec: &ScenarioSpec, epochs: usize) {
    let arms = [
        ("legacy/sync", KernelChoice::Legacy, RuntimeChoice::Sync),
        ("arena/sync", KernelChoice::Arena, RuntimeChoice::Sync),
        ("legacy/actor", KernelChoice::Legacy, RuntimeChoice::Actor),
        ("arena/actor", KernelChoice::Arena, RuntimeChoice::Actor),
    ];
    let mut drivers: Vec<_> = arms
        .iter()
        .map(|&(name, kernel, runtime)| {
            let arm = spec.clone().kernel(kernel).runtime(runtime);
            (name, build(&arm).unwrap_or_else(|e| panic!("{name} spec builds: {e:?}")))
        })
        .collect();
    for e in 0..epochs {
        let (oracle, rest) = drivers.split_first_mut().expect("at least the oracle arm");
        let want = format!("{:?}", oracle.1.step());
        for (name, driver) in rest {
            assert_eq!(
                format!("{:?}", driver.step()),
                want,
                "{name} diverged from {} at epoch {e} of {}",
                oracle.0,
                spec.label()
            );
        }
    }
}

/// Every defense arm × every placement strategy, one fixed small spec
/// each: the exhaustive sweep of the scenario API's categorical axes.
/// (The hoarder under no-PoW degrades to uniform placement — still a
/// buildable, comparable arm.)
#[test]
fn all_defenses_and_strategies_agree_across_kernels() {
    let defenses = [
        Defense::NoPow,
        Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
        Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
    ];
    let strategies = [
        StrategySpec::Honest,
        StrategySpec::Uniform,
        StrategySpec::GapFilling,
        StrategySpec::IntervalTargeting { victim: 0.4, width: 0.01 },
        StrategySpec::AdaptiveMajorityFlipper { margin: 2 },
        StrategySpec::ChurnTimed { trigger: 0.12, retainer: 0.2 },
        StrategySpec::PrecomputeHoarder { fam_seed: 7, attempts: 300 },
    ];
    for &defense in &defenses {
        for &strategy in &strategies {
            let spec = ScenarioSpec::new(240, 42)
                .beta(0.1)
                .churn(0.15)
                .attack_requests(0)
                .searches(40)
                .defense(defense)
                .strategy(strategy);
            assert_kernels_agree(&spec, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random small-n specs over the full categorical product (defense
    /// × strategy × topology × string mode), random β/churn/seed: the
    /// kernels stay Debug-identical for two epochs.
    #[test]
    fn random_specs_agree_across_kernels(
        seed in any::<u64>(),
        n_good in 180usize..340,
        beta_pct in 4u32..16,
        churn_pct in 5u32..22,
        defense_sel in 0usize..4,
        strategy_sel in 0usize..7,
        kind_sel in 0usize..2,
        synthesized in any::<bool>(),
        cap in proptest::option::of(1usize..1 << 14),
    ) {
        let defense = [
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true },
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false },
        ][defense_sel];
        let strategy = [
            StrategySpec::Honest,
            StrategySpec::Uniform,
            StrategySpec::GapFilling,
            StrategySpec::IntervalTargeting { victim: 0.4, width: 0.01 },
            StrategySpec::AdaptiveMajorityFlipper { margin: 2 },
            StrategySpec::ChurnTimed { trigger: 0.12, retainer: 0.2 },
            StrategySpec::PrecomputeHoarder { fam_seed: seed ^ 0xEC4, attempts: 250 },
        ][strategy_sel];
        let kind = [GraphKind::Chord, GraphKind::D2B][kind_sel];
        let mut spec = ScenarioSpec::new(n_good, seed)
            .beta(beta_pct as f64 / 100.0)
            .churn(churn_pct as f64 / 100.0)
            .attack_requests(0)
            .topology(kind)
            .searches(30)
            .defense(defense)
            .strategy(strategy);
        if synthesized {
            spec = spec.strings(StringMode::Synthesized);
        }
        if let Some(c) = cap {
            // The capacity hint shapes allocation only, never results.
            spec = spec.capacity(c);
        }
        assert_kernels_agree(&spec, 2);
    }
}

/// Fault injection is deterministic and schedule-free: every per-link
/// drop/latency/partition decision is a pure hash of the master seed
/// and the message coordinates, never a draw from a shared RNG or a
/// read of wall clock. The same faulty spec therefore produces the
/// identical observation stream whether it runs alone or raced by many
/// sibling copies on other threads.
#[test]
fn faulty_actor_runs_are_identical_at_any_thread_count() {
    let spec = ScenarioSpec::new(240, 42)
        .beta(0.1)
        .churn(0.15)
        .attack_requests(0)
        .searches(40)
        .strategy(StrategySpec::GapFilling)
        .runtime(RuntimeChoice::Actor)
        .drop_rate(0.3)
        .latency(5)
        .partition(16);
    let run = |spec: &ScenarioSpec| -> Vec<String> {
        let mut sys = build(spec).expect("faulty actor spec builds");
        (0..3).map(|_| format!("{:?}", sys.step())).collect()
    };
    let serial = run(&spec);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| run(&spec))).collect();
        for h in handles {
            assert_eq!(h.join().expect("runner thread"), serial, "a raced run diverged");
        }
    });
    // And the faults actually bite: the lossy stream is not the
    // perfect-transport stream (this test would pass vacuously if the
    // knobs were ignored).
    let perfect = run(&spec.clone().drop_rate(0.0).latency(0).partition(0));
    assert_ne!(serial, perfect, "fault knobs must change the observation stream");
}
