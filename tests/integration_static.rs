//! Cross-crate integration: the static construction end to end
//! (idspace + crypto + overlay + core).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::ba::AdversaryMode;
use tiny_groups::core::routing::secure_route_verified;
use tiny_groups::core::{build_initial_graph, measure_robustness, search_path, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::sim::Metrics;

/// Theorem 3's static shape holds over every implemented input graph:
/// at β = 5% with Θ(log log n) groups, ≥ 99% of groups are good and
/// ≥ 95% of searches succeed.
#[test]
fn theorem3_static_shape_all_topologies() {
    for kind in GraphKind::ALL {
        let mut rng = StdRng::seed_from_u64(0xAB);
        let pop = Population::uniform(1900, 100, &mut rng);
        let params = Params::paper_defaults();
        let gg = build_initial_graph(pop, kind, OracleFamily::new(1).h1, &params);
        let rep = measure_robustness(&gg, &params, 600, &mut rng);
        assert!(
            rep.frac_good_majority > 0.99,
            "{}: good-majority fraction {:.4}",
            kind.name(),
            rep.frac_good_majority
        );
        assert!(
            rep.search_success > 0.95,
            "{}: search success {:.4}",
            kind.name(),
            rep.search_success
        );
    }
}

/// The group-level search abstraction agrees with the message-level
/// simulation across seeds and adversary modes (soundness: group-level
/// success implies message-level delivery).
#[test]
fn group_level_abstraction_is_sound_everywhere() {
    let mut rng = StdRng::seed_from_u64(7);
    let pop = Population::uniform(950, 50, &mut rng);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, GraphKind::D2B, OracleFamily::new(2).h1, &params);
    let mut m = Metrics::new();
    for mode in [
        AdversaryMode::Silent,
        AdversaryMode::Equivocate { seed: 3 },
        AdversaryMode::Collude { value: 13 },
    ] {
        for _ in 0..60 {
            let from = rng.gen_range(0..gg.len());
            let key = Id(rng.gen());
            let out = secure_route_verified(&gg, from, key, 0xFEED, mode, &mut m);
            assert!(out.abstraction_sound, "mode {mode:?}");
        }
    }
}

/// Message accounting matches Corollary 1's model: per-search messages
/// scale with D·|G|², so tiny groups cost far less than log-n groups on
/// identical populations and topologies.
#[test]
fn corollary1_message_scaling() {
    let mut rng = StdRng::seed_from_u64(11);
    let pop = Population::uniform(3800, 200, &mut rng);
    let fam = OracleFamily::new(3);
    let tiny_params = Params::paper_defaults();
    let tiny = build_initial_graph(pop.clone(), GraphKind::Chord, fam.h1, &tiny_params);
    let classic_params = Params::paper_defaults().with_classic_groups(1.5);
    let classic = build_initial_graph(pop, GraphKind::Chord, fam.h1, &classic_params);

    let mut mt = Metrics::new();
    let mut mc = Metrics::new();
    for _ in 0..300 {
        let from = rng.gen_range(0..tiny.len());
        let key = Id(rng.gen());
        search_path(&tiny, from, key, &mut mt);
        search_path(&classic, from, key, &mut mc);
    }
    let ratio = mc.routing_msgs as f64 / mt.routing_msgs as f64;
    let size_ratio = classic.mean_group_size() / tiny.mean_group_size();
    // Message ratio ≈ (size ratio)² up to route-length noise.
    assert!(
        ratio > 0.5 * size_ratio * size_ratio,
        "msg ratio {ratio:.1} vs size ratio² {:.1}",
        size_ratio * size_ratio
    );
    assert!(ratio > 1.5, "classic must cost more: ×{ratio:.1}");
}

/// Determinism across the whole static stack: same seed, same numbers.
#[test]
fn static_stack_is_deterministic() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(99);
        let pop = Population::uniform(480, 20, &mut rng);
        let params = Params::paper_defaults();
        let gg =
            build_initial_graph(pop, GraphKind::DistanceHalving, OracleFamily::new(4).h1, &params);
        let rep = measure_robustness(&gg, &params, 200, &mut rng);
        (gg.frac_red(), rep.search_success, rep.mean_msgs)
    };
    assert_eq!(build(), build());
}
