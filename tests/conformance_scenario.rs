//! End-to-end conformance of the scenario API: a spec that round-trips
//! through its serialized label builds a driver that reproduces the
//! original's simulation byte-for-byte, across every defense arm. This
//! is the property that makes the label a safe persistence key (cache
//! entries, warm-started sweeps, cross-process cell addressing): the
//! string *is* the scenario.
//!
//! The other half of the conformance story — the committed seed-42
//! e10/e11/e12 golden CSVs replaying byte-identically through the
//! `EpochDriver` path — lives in `crates/experiments/tests/golden.rs`
//! (the snapshot bytes predate the redesign and were not regenerated).

use tg_core::scenario::{Defense, MintScheme, ScenarioSpec, StrategySpec, StringMode};
use tg_experiments::frontier::{FrontierConfig, LEGACY_CHURN};
use tg_overlay::GraphKind;

/// Step both drivers and compare the full observation, field for field.
fn assert_drivers_agree(spec: &ScenarioSpec, epochs: usize) {
    let mut a = tg_pow::scenario::build(spec).expect("buildable scenario");
    let reparsed = ScenarioSpec::parse(&spec.label()).expect("label round-trips");
    assert_eq!(&reparsed, spec);
    let mut b = tg_pow::scenario::build(&reparsed).expect("reparsed spec is buildable");
    for _ in 0..epochs {
        let oa = a.step();
        let ob = b.step();
        assert_eq!(format!("{oa:?}"), format!("{ob:?}"), "spec {}", spec.label());
    }
}

/// One spec per defense arm (no-PoW strategic, full protocol, frozen
/// strings, synthesized strings, honest) — the split the API erased,
/// re-checked through the serialized form.
#[test]
fn parsed_labels_reproduce_their_simulations() {
    let base = || ScenarioSpec::new(300, 42).beta(0.12).churn(0.15).attack_requests(0).searches(60);
    let specs = [
        base().strategy(StrategySpec::GapFilling),
        base(),
        base()
            .strategy(StrategySpec::AdaptiveMajorityFlipper { margin: 2 })
            .defense(Defense::Pow { scheme: MintScheme::SingleHash, fresh_strings: true }),
        base()
            .strategy(StrategySpec::PrecomputeHoarder { fam_seed: 7, attempts: 400 })
            .defense(Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: false })
            .strings(StringMode::Synthesized)
            .topology(GraphKind::D2B),
    ];
    for spec in &specs {
        assert_drivers_agree(spec, 2);
    }
}

/// A frontier cell coordinate and its scenario label name the same
/// simulation: rebuilding the cell from the parsed label reproduces
/// `eval_cell`'s trial stream input exactly.
#[test]
fn frontier_cells_round_trip_through_the_label() {
    let cfg = FrontierConfig {
        n_good: 260,
        betas: vec![0.06, 0.25],
        d2s: vec![3.0],
        churns: vec![LEGACY_CHURN],
        kinds: vec![GraphKind::Chord],
        strategies: vec!["gap-filling", "churn-timed"],
        defenses: vec![
            Defense::NoPow,
            Defense::Pow { scheme: MintScheme::TwoHash, fresh_strings: true },
        ],
        epochs: 1,
        trials: 1,
        searches: 40,
        seed: 42,
        kernel: Default::default(),
        runtime: Default::default(),
        transport: Default::default(),
        store: None,
        check_invariants: false,
    };
    for key in cfg.rows() {
        let spec = key.scenario(&cfg, cfg.betas[0], 0xDEAD_BEEF);
        assert_drivers_agree(&spec, 1);
    }
}
