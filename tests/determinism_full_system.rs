//! Pins the determinism of [`FullSystem::run_epoch`] under a strategic
//! adversary: the same master seed must reproduce the **byte-identical
//! `FullEpochReport` debug output** — across repeated runs in one
//! process, and regardless of thread scheduling (`--test-threads=1` vs
//! the default parallel runner, a loaded vs an idle machine). Every
//! stream the pipeline draws from is a labelled child of the master
//! seed, so nothing here may depend on wall clock, scheduling, or
//! iteration order of any shared structure.

use tiny_groups::core::dynamic::GapFilling;
use tiny_groups::core::Params;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{FullSystem, MintScheme, PuzzleParams, StrategicPowProvider, StringParams};
use tiny_groups::sim::parallel_map;

/// Three epochs of the full protocol (string agreement → strategic
/// minting → dynamic advance) under a gap-filling adversary on the
/// single-hash ablation — the path where the strategy's placement
/// actually reaches the ring, so any nondeterminism would surface in
/// the numbers, not just the timings.
fn run_reports(master_seed: u64) -> String {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.12;
    params.attack_requests_per_id = 1;
    let mut sys = FullSystem::new(
        params,
        GraphKind::Chord,
        PuzzleParams::calibrated(16, 2048),
        StringParams::default(),
        500,
        30.0,
        true,
        master_seed,
    )
    .with_adversary(StrategicPowProvider::boxed(
        500,
        30.0,
        MintScheme::SingleHash,
        Box::new(GapFilling),
    ));
    sys.dynamics.set_searches_per_epoch(150);
    let mut out = String::new();
    for _ in 0..3 {
        out.push_str(&format!("{:#?}\n", sys.run_epoch()));
    }
    out
}

/// Two sequential runs with the same seed agree byte-for-byte.
#[test]
fn strategic_full_system_reports_are_byte_identical() {
    let a = run_reports(42);
    let b = run_reports(42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same master seed must replay the FullEpochReport stream exactly");
}

/// The same run is byte-identical when executed amid unrelated parallel
/// load — the in-process analogue of `--test-threads=1` vs the default
/// runner: thread scheduling may reorder *when* work happens, never
/// *what* it computes.
#[test]
fn strategic_full_system_is_schedule_independent() {
    let solo = run_reports(42);
    // Interleave the real run with busy work on every available worker.
    let mixed = parallel_map((0..4u64).collect(), |i| {
        if i == 2 {
            run_reports(42)
        } else {
            // Contending load: meaningless but CPU-hungry.
            format!("{}", (0..200_000u64).fold(i, |a, x| a ^ x.wrapping_mul(0x9E37)))
        }
    });
    assert_eq!(mixed[2], solo, "scheduling contention must not leak into the report");
}

/// Different seeds genuinely differ (the two tests above would pass
/// vacuously if the pipeline ignored its seed).
#[test]
fn master_seed_reaches_the_whole_pipeline() {
    assert_ne!(run_reports(42), run_reports(43));
}
