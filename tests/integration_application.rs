//! Cross-crate integration: the application layer (storage, bootstrap,
//! full pipeline) on top of the whole stack — driven entirely through
//! the scenario API, the way a downstream system would embed it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::ba::AdversaryMode;
use tiny_groups::core::dht::GetOutcome;
use tiny_groups::core::{
    assemble_bootstrap, recommended_contacts, GroupGraphView, ScenarioSpec, SecureDht,
};
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{FullSystem, PuzzleParams, StringAdversary, StringParams};
use tiny_groups::sim::Metrics;

/// The storage service survives epochs of full membership turnover with
/// zero forged reads, even with every Byzantine replica colluding.
#[test]
fn dht_over_dynamic_epochs_never_serves_forged_data() {
    let spec = ScenarioSpec::new(800, 61).budget(42).churn(0.15).attack_requests(0).searches(100);
    let mut sys = spec.build().expect("honest no-PoW scenario");

    let mut rng = StdRng::seed_from_u64(62);
    let items: Vec<(Id, u64)> = (0..150).map(|i| (Id(rng.gen()), 5000 + i)).collect();

    for _ in 0..3 {
        sys.step();
        let gg = sys.graphs().side(0);
        let mut dht = SecureDht::new(&gg, AdversaryMode::Collude { value: 0xF0F0 });
        let mut m = Metrics::new();
        let (stored, available) = dht.measure_availability(&items, &mut rng, &mut m);
        assert!(stored > 0.95, "stored {stored:.3}");
        assert!(available > 0.93, "available {available:.3}");
        // Absolutely no forged value is ever served.
        for &(key, value) in &items {
            if let GetOutcome::Value(v) = dht.get(0, key, &mut m) {
                assert_eq!(v, value, "forged read");
            }
        }
    }
}

/// Joiners can always assemble a trustworthy bootstrap from the live
/// system, epoch after epoch (Appendix IX over §III).
#[test]
fn bootstrap_assembly_over_live_epochs() {
    let spec = ScenarioSpec::new(600, 63)
        .budget(32)
        .churn(0.15)
        .attack_requests(0)
        .topology(GraphKind::D2B)
        .searches(80);
    let mut sys = spec.build().expect("honest no-PoW scenario");
    let mut rng = StdRng::seed_from_u64(64);
    for _ in 0..3 {
        sys.step();
        let gg = sys.graphs().side(0);
        let k = recommended_contacts(gg.len());
        for _ in 0..50 {
            let boot = assemble_bootstrap(&gg, k, &mut rng);
            assert!(boot.has_good_majority(), "bootstrap lost its majority");
        }
    }
}

/// The composed FullSystem holds all its invariants simultaneously for
/// several epochs under a forced-record string adversary.
///
/// Constructed directly rather than through a `ScenarioSpec`: the
/// string-release adversary is a `FullSystem`-only knob the declarative
/// spec does not (yet) model — see the ROADMAP follow-up.
#[test]
fn full_system_invariants_hold_jointly() {
    let mut params = tiny_groups::core::Params::paper_defaults();
    params.churn_rate = 0.15;
    params.attack_requests_per_id = 1;
    let mut sys = FullSystem::new(
        params,
        GraphKind::Chord,
        PuzzleParams::calibrated(16, 2048),
        StringParams::default(),
        600,
        30.0,
        true,
        65,
    );
    sys.string_adversary = StringAdversary::ForcedRecords { strings: 3, release_frac: 0.49 };
    sys.dynamics.set_searches_per_epoch(150);
    let mut seen_strings = std::collections::HashSet::new();
    for _ in 0..3 {
        let r = sys.run_epoch();
        assert!(r.strings.agreement);
        assert!(seen_strings.insert(r.epoch_string), "epoch string reused");
        assert!(r.minted_bad as f64 <= 30.0 * 1.7, "minted_bad {}", r.minted_bad);
        assert!(r.dynamics.search_success_dual > 0.9);
        assert!(r.dynamics.frac_red[0] < 0.05);
    }
}
