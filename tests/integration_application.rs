//! Cross-crate integration: the application layer (storage, bootstrap,
//! full pipeline) on top of the whole stack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_groups::ba::AdversaryMode;
use tiny_groups::core::dht::GetOutcome;
use tiny_groups::core::dynamic::{BuildMode, DynamicSystem, UniformProvider};
use tiny_groups::core::{assemble_bootstrap, recommended_contacts, Params, SecureDht};
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{FullSystem, PuzzleParams, StringAdversary, StringParams};
use tiny_groups::sim::Metrics;

/// The storage service survives epochs of full membership turnover with
/// zero forged reads, even with every Byzantine replica colluding.
#[test]
fn dht_over_dynamic_epochs_never_serves_forged_data() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.15;
    params.attack_requests_per_id = 0;
    let mut provider = UniformProvider { n_good: 800, n_bad: 42 };
    let mut sys =
        DynamicSystem::new(params, GraphKind::Chord, BuildMode::DualGraph, &mut provider, 61);
    sys.searches_per_epoch = 100;

    let mut rng = StdRng::seed_from_u64(62);
    let items: Vec<(Id, u64)> = (0..150).map(|i| (Id(rng.gen()), 5000 + i)).collect();

    for _ in 0..3 {
        sys.advance_epoch(&mut provider);
        let gg = &sys.graphs[0];
        let mut dht = SecureDht::new(gg, AdversaryMode::Collude { value: 0xF0F0 });
        let mut m = Metrics::new();
        let (stored, available) = dht.measure_availability(&items, &mut rng, &mut m);
        assert!(stored > 0.95, "stored {stored:.3}");
        assert!(available > 0.93, "available {available:.3}");
        // Absolutely no forged value is ever served.
        for &(key, value) in &items {
            if let GetOutcome::Value(v) = dht.get(0, key, &mut m) {
                assert_eq!(v, value, "forged read");
            }
        }
    }
}

/// Joiners can always assemble a trustworthy bootstrap from the live
/// system, epoch after epoch (Appendix IX over §III).
#[test]
fn bootstrap_assembly_over_live_epochs() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.15;
    params.attack_requests_per_id = 0;
    let mut provider = UniformProvider { n_good: 600, n_bad: 32 };
    let mut sys =
        DynamicSystem::new(params, GraphKind::D2B, BuildMode::DualGraph, &mut provider, 63);
    sys.searches_per_epoch = 80;
    let mut rng = StdRng::seed_from_u64(64);
    for _ in 0..3 {
        sys.advance_epoch(&mut provider);
        let gg = &sys.graphs[0];
        let k = recommended_contacts(gg.len());
        for _ in 0..50 {
            let boot = assemble_bootstrap(gg, k, &mut rng);
            assert!(boot.has_good_majority(), "bootstrap lost its majority");
        }
    }
}

/// The composed FullSystem holds all its invariants simultaneously for
/// several epochs under a forced-record string adversary.
#[test]
fn full_system_invariants_hold_jointly() {
    let mut params = Params::paper_defaults();
    params.churn_rate = 0.15;
    params.attack_requests_per_id = 1;
    let mut sys = FullSystem::new(
        params,
        GraphKind::Chord,
        PuzzleParams::calibrated(16, 2048),
        StringParams::default(),
        600,
        30.0,
        true,
        65,
    );
    sys.string_adversary = StringAdversary::ForcedRecords { strings: 3, release_frac: 0.49 };
    sys.dynamics.searches_per_epoch = 150;
    let mut seen_strings = std::collections::HashSet::new();
    for _ in 0..3 {
        let r = sys.run_epoch();
        assert!(r.strings.agreement);
        assert!(seen_strings.insert(r.epoch_string), "epoch string reused");
        assert!(r.minted_bad as f64 <= 30.0 * 1.7, "minted_bad {}", r.minted_bad);
        assert!(r.dynamics.search_success_dual > 0.9);
        assert!(r.dynamics.frac_red[0] < 0.05);
    }
}
