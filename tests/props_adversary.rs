//! Property tests for the [`AdversaryStrategy`] contract every placement
//! engine consumer (E10's matrix, E11's frontier, the strategic PoW
//! pipeline) relies on:
//!
//! * **budget** — a strategy returns exactly the `⌊βn⌋` identities it
//!   was granted (the one sanctioned overrun, solution hoarding against
//!   frozen strings, lives outside these four placement strategies),
//! * **ID space** — placements collide neither with the good census nor
//!   with each other (the population builder rejects duplicates),
//! * **determinism** — a fixed seed and view replays the placement
//!   bit-for-bit (the whole E11 reproducibility contract stands on it),
//! * **dominance** — the adaptive flipper's end-on gap claims never owe
//!   less of the key space than uniform placement buys (if observation
//!   plus choice were ever *worse* than blind noise, the "adaptive rows
//!   are the hardest rows" framing would be vacuous).
//!
//! The timing strategy [`ChurnTimed`] signs a deliberately looser
//! budget contract — **at most** `⌊βn⌋` per epoch (quiet epochs spend
//! only its camouflage retainer) and exactly `⌊βn⌋` in a strike epoch —
//! which its own properties below pin in both regimes, against a real
//! post-churn observation for the strike side.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use tiny_groups::core::dynamic::adversary::{
    AdaptiveMajorityFlipper, AdversaryStrategy, AdversaryView, ChurnTimed, GapFilling,
    IntervalTargeting, Uniform,
};
use tiny_groups::core::dynamic::{BuildMode, DynamicSystem, EpochIds, StrategicProvider};
use tiny_groups::core::Params;
use tiny_groups::idspace::Id;
use tiny_groups::overlay::GraphKind;

/// A u.a.r. good census of `n` IDs.
fn census(n: usize, seed: u64) -> Vec<Id> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Id(rng.gen())).collect()
}

/// Every placement strategy of the engine, freshly instantiated.
/// `ChurnTimed` is covered by its own properties below: its budget
/// contract (≤, not ==) differs from the four exact-budget strategies.
fn all_strategies(victim: u64, width: f64) -> Vec<Box<dyn AdversaryStrategy>> {
    vec![
        Box::new(Uniform),
        Box::new(GapFilling),
        Box::new(IntervalTargeting { victim: Id(victim), width }),
        Box::new(AdaptiveMajorityFlipper::default()),
    ]
}

/// A shared small system whose pools just lost ≈30% of their good
/// members — the heavy-departure observation that arms the churn-timed
/// strike. Built once; the proptests only *read* its graphs.
fn heavy_churn_system() -> &'static DynamicSystem {
    static SYS: OnceLock<DynamicSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut provider = StrategicProvider::new(300, 15, Uniform);
        let mut sys = DynamicSystem::new(
            Params::paper_defaults(),
            GraphKind::Chord,
            BuildMode::DualGraph,
            &mut provider,
            911,
        );
        for g in sys.graphs.iter_mut() {
            let good = g.pool.good_indices();
            let departing = (good.len() as f64 * 0.3).round() as usize;
            for &i in good.iter().take(departing) {
                g.pool.mark_departed(i);
            }
            g.recolor();
        }
        sys
    })
}

/// Key-space share owned by `bad` against the `good` census.
fn share_of(good: &[Id], bad: &[Id]) -> f64 {
    EpochIds { good: good.to_vec(), bad: bad.to_vec() }.bad_ring_share()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Budget + ID space, across all four strategies: exactly `budget`
    /// IDs, none colliding with the census or each other.
    #[test]
    fn placement_respects_budget_and_id_space(
        seed in any::<u64>(),
        n_sel in 60usize..300,
        budget in 1usize..40,
        victim in any::<u64>(),
        width in 0.001f64..0.05,
    ) {
        let good = census(n_sel, seed);
        let view = AdversaryView::genesis(0);
        for mut s in all_strategies(victim, width) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD);
            let bad = s.place(&view, &good, budget, &mut rng);
            prop_assert_eq!(bad.len(), budget, "{}: budget violated", s.name());
            let mut all: Vec<Id> = good.iter().chain(bad.iter()).copied().collect();
            all.sort_unstable();
            prop_assert!(
                all.windows(2).all(|w| w[0] != w[1]),
                "{}: placement collides inside the ID space", s.name()
            );
        }
    }

    /// Fixed seed + view ⇒ bit-identical placement, for every strategy.
    #[test]
    fn placement_is_deterministic_for_fixed_seed_and_view(
        seed in any::<u64>(),
        n_sel in 60usize..300,
        budget in 1usize..40,
        victim in any::<u64>(),
        width in 0.001f64..0.05,
    ) {
        let good = census(n_sel, seed);
        let view = AdversaryView::genesis(3);
        let run = |mut s: Box<dyn AdversaryStrategy>| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            s.place(&view, &good, budget, &mut rng)
        };
        let a: Vec<Vec<Id>> = all_strategies(victim, width).into_iter().map(run).collect();
        let b: Vec<Vec<Id>> = all_strategies(victim, width).into_iter().map(run).collect();
        prop_assert_eq!(a, b);
    }

    /// Churn-timed budget + ID space, both regimes: a quiet (genesis)
    /// epoch spends at most the budget — the retainer, strictly less
    /// for any budget ≥ 3 — and a strike epoch (observed heavy
    /// departure) spends exactly the budget. No placement collides with
    /// the census or itself in either regime.
    #[test]
    fn churn_timed_respects_budget_and_id_space(
        seed in any::<u64>(),
        n_sel in 60usize..300,
        budget in 3usize..40,
    ) {
        let good = census(n_sel, seed);
        let heavy = heavy_churn_system();
        let strike_view =
            AdversaryView { epoch: 2, graphs: tiny_groups::core::GraphsView::Legacy(&heavy.graphs), epoch_string: None };
        for (view, label) in [(AdversaryView::genesis(0), "quiet"), (strike_view, "strike")] {
            let mut s = ChurnTimed::default();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC4);
            let bad = s.place(&view, &good, budget, &mut rng);
            prop_assert!(bad.len() <= budget, "{label}: budget exceeded");
            if label == "quiet" {
                prop_assert!(bad.len() < budget, "{label}: retainer must hold back");
            } else {
                prop_assert_eq!(bad.len(), budget, "{label}: strike must spend it all");
            }
            let mut all: Vec<Id> = good.iter().chain(bad.iter()).copied().collect();
            all.sort_unstable();
            prop_assert!(
                all.windows(2).all(|w| w[0] != w[1]),
                "{label}: placement collides inside the ID space"
            );
        }
    }

    /// Churn-timed determinism: fixed seed and view ⇒ bit-identical
    /// placement, in both regimes.
    #[test]
    fn churn_timed_is_deterministic(
        seed in any::<u64>(),
        n_sel in 60usize..300,
        budget in 1usize..40,
    ) {
        let good = census(n_sel, seed);
        let heavy = heavy_churn_system();
        for view in [
            AdversaryView::genesis(0),
            AdversaryView { epoch: 2, graphs: tiny_groups::core::GraphsView::Legacy(&heavy.graphs), epoch_string: None },
        ] {
            let run = || {
                let mut s = ChurnTimed::default();
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(9));
                s.place(&view, &good, budget, &mut rng)
            };
            prop_assert_eq!(run(), run());
        }
    }

    /// The adaptive flipper's key-space share never falls below what the
    /// same budget buys under uniform placement: its end-on claims own
    /// (almost) the whole widest gaps, while uniform IDs own random
    /// fragments of the gaps they happen to split.
    #[test]
    fn flipper_share_never_below_uniform(
        seed in any::<u64>(),
        n_sel in 80usize..300,
        budget_frac in 0.02f64..0.20,
    ) {
        let good = census(n_sel, seed);
        let budget = ((n_sel as f64 * budget_frac) as usize).max(1);
        let view = AdversaryView::genesis(0);
        let mut rng_u = StdRng::seed_from_u64(seed ^ 0x0F1);
        let mut rng_f = StdRng::seed_from_u64(seed ^ 0x0F2);
        let uniform = share_of(&good, &Uniform.place(&view, &good, budget, &mut rng_u));
        let flip = share_of(
            &good,
            &AdaptiveMajorityFlipper::default().place(&view, &good, budget, &mut rng_f),
        );
        prop_assert!(
            flip + 1e-9 >= uniform,
            "flipper share {flip:.5} below uniform {uniform:.5} (n={n_sel}, budget={budget})"
        );
    }
}
