//! Cross-crate integration: PoW pipeline and baselines against the core
//! construction.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tiny_groups::baselines::{CuckooParams, CuckooSim, CuckooStrategy};
use tiny_groups::core::{build_initial_graph, Params, Population};
use tiny_groups::crypto::OracleFamily;
use tiny_groups::overlay::GraphKind;
use tiny_groups::pow::{
    run_string_protocol, MintingSim, PuzzleParams, StringAdversary, StringParams,
};

/// The headline comparison the paper's abstract promises: under a
/// computationally-bounded adversary (PoW world), log-log-size groups
/// retain good majorities — while the cuckoo rule at the *same* group
/// size under classic join-leave churn does not survive.
#[test]
fn tiny_groups_with_pow_beat_cuckoo_at_same_group_size() {
    // Tiny groups, PoW-bounded adversary: one minting window, β = 5%.
    let sim = MintingSim {
        params: PuzzleParams::calibrated(16, 2048),
        n_good: 2000,
        adversary_units: 100.0,
        idealized_good: true,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let out = sim.run_window(&mut rng);
    let pop = Population::new(out.good_ids, out.bad_ids);
    let params = Params::paper_defaults();
    let gg = build_initial_graph(pop, GraphKind::Chord, OracleFamily::new(1).h1, &params);
    let group_size = gg.mean_group_size().round() as usize;
    assert!(
        gg.frac_good_majority() > 0.995,
        "PoW world: {:.4} good majorities at |G| ≈ {group_size}",
        gg.frac_good_majority()
    );

    // Cuckoo rule at the same group size, same β, classic churn.
    let cparams = CuckooParams { n_good: 2000, n_bad: 105, group_size, k: 4 };
    let mut rng = StdRng::seed_from_u64(2);
    let mut cuckoo = CuckooSim::new(cparams, &mut rng);
    let result = cuckoo.run(50_000, CuckooStrategy::RandomRejoin, &mut rng);
    assert!(
        result.failed_at.is_some(),
        "cuckoo with |G| = {group_size} at β ≈ 5% must lose a region within 50k events"
    );
}

/// The string protocol runs on a *freshly built* group graph (not a
/// synthetic topology) and holds Lemma 12 under the worst release
/// timing, across seeds.
#[test]
fn string_protocol_on_built_graphs_across_seeds() {
    for seed in [3u64, 4, 5] {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::uniform(760, 40, &mut rng);
        let gg = build_initial_graph(
            pop,
            GraphKind::Chord,
            OracleFamily::new(seed).h1,
            &Params::paper_defaults(),
        );
        let adv = StringAdversary::DelayedRelease { strings: 6, release_frac: 0.49, units: 40.0 };
        let out = run_string_protocol(&gg, &StringParams::default(), adv, &mut rng);
        assert!(out.agreement, "seed {seed}: {} missing pairs", out.missing_pairs);
        assert!(out.giant_size > 700, "seed {seed}: giant {}", out.giant_size);
    }
}

/// Baseline sanity across the whole stack: the Θ(log n) construction
/// and the tiny construction order correctly on *both* axes — the
/// baseline has larger groups (more cost) and at least as many good
/// majorities (it buys ε = 1/poly(n), not 1/poly(log n)).
#[test]
fn cost_robustness_tradeoff_orders_correctly() {
    let mut rng = StdRng::seed_from_u64(6);
    let pop = Population::uniform(3800, 200, &mut rng);
    let fam = OracleFamily::new(6);
    let tiny =
        build_initial_graph(pop.clone(), GraphKind::Chord, fam.h1, &Params::paper_defaults());
    let classic = build_initial_graph(
        pop,
        GraphKind::Chord,
        fam.h1,
        &Params::paper_defaults().with_classic_groups(2.0),
    );
    assert!(classic.mean_group_size() > 1.3 * tiny.mean_group_size());
    assert!(classic.frac_good_majority() >= tiny.frac_good_majority());
    assert_eq!(classic.frac_good_majority(), 1.0);
}
